//! Persistent, mmap-friendly on-disk store for oracle traces.
//!
//! A [`TraceDb`] is a directory of `.trc` files, one per `(name, len)` key
//! (the same identity [`crate::TraceCache`] uses in memory), laid out as
//! `<dir>/<name>/<len>.trc`: a fixed little-endian header followed by one
//! record per [`DynInsn`], consumed by a sequential chunked decode.
//!
//! ## File layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"RCMCTRCE"
//!      8     4  format version   (FORMAT_VERSION — file layout)
//!     12     4  trace version    (TRACE_VERSION — emulator semantics,
//!                                 independent of the timing MODEL_VERSION)
//!     16     8  key length       (the requested trace length, cache key)
//!     24     8  instruction count
//!     32     8  checksum         (4-lane FNV-1a over the LOGICAL records:
//!                                 lane j folds 8-byte word j of each
//!                                 record, lanes FNV-mixed at the end —
//!                                 identical across format versions)
//!     40     4  static instruction count of the source program
//!     44     1  halted flag      (1 = ran to `halt`, 0 = hit the budget)
//!     45     3  reserved (zero)
//!     48     2  name length
//!     50    14  reserved (zero)
//!     64     n  name (UTF-8), zero-padded to the next multiple of 32
//!   ....    ..  payload: one record per dynamic instruction
//! ```
//!
//! A record's **logical** form is four 8-byte words: the instruction's
//! ISA encoding ([`rcmc_isa::encode`]), `pc | next_pc << 32`, `mem_addr`,
//! and a reserved all-zero word.
//!
//! * **Format v1** stored the four words verbatim — 32 bytes per record,
//!   roughly three quarters of them zero (non-memory instructions have no
//!   `mem_addr`; the reserved word never held anything).
//! * **Format v2** (what this build writes) run-length-compresses exactly
//!   those zeros: each record is one control byte whose low four bits flag
//!   the nonzero words, followed by only those words. A typical non-memory
//!   instruction costs 17 bytes instead of 32.
//!
//! Reads fall through by version: v1 files decode bit-for-bit as before
//! (no re-emulation after upgrading), v2 files take the compressed path.
//! The checksum always covers the logical words, so it vouches for the
//! *decoded* instructions identically under both layouts.
//!
//! ## Versioning rules
//!
//! * [`FORMAT_VERSION`] changes when the byte layout changes; older layouts
//!   this build can still read are listed in `READABLE_FORMATS`.
//! * [`TRACE_VERSION`] changes when the *emulator's semantics* change such
//!   that a re-emulated trace could differ. It is deliberately independent
//!   of the timing model's `MODEL_VERSION`: timing changes never invalidate
//!   traces.
//!
//! A stored trace is **ignored, never trusted**: [`TraceDb::load`] returns
//! `None` (fall through to re-emulation) unless the magic, both versions,
//! the embedded name/key, the payload size and the checksum all check out.
//! Writes go through a temp file + atomic rename (exactly like the result
//! store), so concurrent writers — threads or processes racing on one key —
//! can only ever leave a complete, valid file behind.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rcmc_isa::{encode, Insn, Opcode, Reg, NUM_INT_REGS};

use crate::trace::{DynInsn, Trace};

/// File-layout version this build writes; bump when the byte layout
/// changes. v2 = zero-run compressed records (v1 = fixed 32-byte records,
/// still readable).
pub const FORMAT_VERSION: u32 = 2;

/// Layout versions this build can decode.
const READABLE_FORMATS: [u32; 2] = [1, 2];

/// Emulator-semantics version; bump when re-emulating a program could
/// produce a different dynamic stream. Independent of the timing model's
/// `MODEL_VERSION`.
pub const TRACE_VERSION: u32 = 1;

/// Bytes per **logical** dynamic-instruction record (the v1 on-disk width;
/// v2 records are variable, between 1 and [`V2_MAX_RECORD`] bytes).
pub const RECORD_BYTES: usize = 32;

/// Largest possible v2 record: control byte + all four words nonzero.
pub const V2_MAX_RECORD: usize = 1 + RECORD_BYTES;

/// Valid bits of a v2 control byte (one per logical word).
const V2_WORD_MASK: u8 = 0x0f;

const MAGIC: &[u8; 8] = b"RCMCTRCE";
const HEADER_BASE: usize = 64;
const NO_REG: u8 = 0xff;

/// Why a stored trace was rejected (surfaced by [`TraceDb::load_full`] and
/// `rcmc trace verify`; [`TraceDb::load`] folds all of these into `None`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceDbError {
    /// The file could not be read.
    Io(String),
    /// The magic bytes do not match.
    BadMagic,
    /// Written with a different file layout.
    WrongFormatVersion(u32),
    /// Written by an emulator with different semantics.
    WrongTraceVersion(u32),
    /// The embedded name or key length disagrees with the requested key.
    KeyMismatch,
    /// The file is shorter than its header claims.
    Truncated,
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// A payload record does not decode to a valid instruction.
    BadRecord(usize),
}

impl std::fmt::Display for TraceDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDbError::Io(e) => write!(f, "i/o: {e}"),
            TraceDbError::BadMagic => write!(f, "bad magic (not a trace file)"),
            TraceDbError::WrongFormatVersion(v) => {
                write!(f, "format version {v} (this build reads {FORMAT_VERSION})")
            }
            TraceDbError::WrongTraceVersion(v) => {
                write!(f, "trace version {v} (this build emits {TRACE_VERSION})")
            }
            TraceDbError::KeyMismatch => write!(f, "embedded name/length disagrees with the key"),
            TraceDbError::Truncated => write!(f, "truncated payload"),
            TraceDbError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            TraceDbError::BadRecord(i) => write!(f, "record {i} does not decode"),
        }
    }
}

impl std::error::Error for TraceDbError {}

/// A decoded stored trace: the dynamic instructions plus the whole-run
/// facts a [`Trace`] carries.
#[derive(Debug)]
pub struct StoredTrace {
    /// The dynamic instructions, in program order.
    pub insns: Vec<DynInsn>,
    /// Whether the traced program ran to `halt`.
    pub halted: bool,
    /// Static instruction count of the source program.
    pub static_insns: usize,
}

/// Catalog entry for one stored trace ([`TraceDb::list`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMeta {
    /// Workload name (the cache key's name half).
    pub name: String,
    /// Requested trace length (the cache key's length half).
    pub len: u64,
    /// Dynamic instructions actually stored.
    pub insns: u64,
    /// On-disk file size in bytes.
    pub bytes: u64,
    /// Trace version the file was written with.
    pub trace_version: u32,
    /// Whether the traced program ran to `halt`.
    pub halted: bool,
}

/// Distinguishes concurrent writers' temp files within one process; the
/// pid distinguishes processes.
static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A directory of versioned, checksummed oracle-trace files.
///
/// Cloning is cheap (the handle is just the root path); every operation
/// opens the files it needs, so one handle can be shared freely across
/// threads.
#[derive(Clone, Debug)]
pub struct TraceDb {
    dir: PathBuf,
}

impl TraceDb {
    /// A store rooted at `dir` (created on first write).
    pub fn at(dir: PathBuf) -> TraceDb {
        TraceDb { dir }
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Only names that can never escape the store directory or collide
    /// with the temp-file protocol are accepted as keys.
    pub fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.len() <= 128
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
    }

    fn path_of(&self, name: &str, len: u64) -> PathBuf {
        self.dir.join(name).join(format!("{len}.trc"))
    }

    /// Whether a file exists for `(name, len)` (without validating it).
    pub fn contains(&self, name: &str, len: u64) -> bool {
        Self::valid_name(name) && self.path_of(name, len).is_file()
    }

    /// Load and fully validate the trace stored under `(name, len)`.
    /// Every rejection reason is explicit; callers that only care about
    /// hit-or-miss use [`TraceDb::load`].
    pub fn load_full(&self, name: &str, len: u64) -> Result<StoredTrace, TraceDbError> {
        if !Self::valid_name(name) {
            return Err(TraceDbError::KeyMismatch);
        }
        // Trace files are several MB — far bigger than any cache level —
        // so reading one whole file into a buffer and then decoding from
        // it streams every byte through DRAM twice. Instead the payload is
        // decoded through a bounded thread-local scratch chunk that stays
        // cache-resident, which is measurably the difference on the warm
        // path (the retained instruction vector is then the only big
        // memory consumer).
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|buf| {
            let mut buf = buf.borrow_mut();
            stream_decode_file(&self.path_of(name, len), (name, len), &mut buf)
        })
    }

    /// Load the trace stored under `(name, len)`, or `None` if absent,
    /// stale (older format/trace version) or corrupt in any way — the
    /// caller falls through to re-emulation; a stored trace is never
    /// trusted without passing every check.
    pub fn load(&self, name: &str, len: u64) -> Option<Arc<Vec<DynInsn>>> {
        self.load_full(name, len).ok().map(|t| Arc::new(t.insns))
    }

    /// Persist `trace` under `(name, len)` via temp file + atomic rename.
    /// Returns whether the trace is now durably on disk (an unwritable
    /// store degrades to re-emulation next process, not an error).
    pub fn save(&self, name: &str, len: u64, trace: &Trace) -> bool {
        self.save_insns(name, len, &trace.insns, trace.halted, trace.static_insns)
    }

    /// [`TraceDb::save`] from parts (what the cache fallthrough uses when
    /// only the instruction vector is at hand).
    pub fn save_insns(
        &self,
        name: &str,
        len: u64,
        insns: &[DynInsn],
        halted: bool,
        static_insns: usize,
    ) -> bool {
        if !Self::valid_name(name) {
            return false;
        }
        let p = self.path_of(name, len);
        let bytes = encode_file(name, len, insns, halted, static_insns);
        write_atomic(&p, &bytes).is_ok()
    }

    /// Copy an already-encoded trace file into the store after full
    /// validation, optionally renaming it. Returns the `(name, len)` key
    /// it landed under.
    pub fn import(
        &self,
        file_bytes: &[u8],
        rename: Option<&str>,
    ) -> Result<(String, u64), TraceDbError> {
        // Strict decode first: checksum, every record, the lot.
        let (header, trace) = decode_file_header_and_body(file_bytes)?;
        let name = rename.unwrap_or(&header.name).to_string();
        if !Self::valid_name(&name) {
            return Err(TraceDbError::KeyMismatch);
        }
        let ok = self.save_insns(
            &name,
            header.key_len,
            &trace.insns,
            trace.halted,
            trace.static_insns,
        );
        if !ok {
            return Err(TraceDbError::Io("store is not writable".to_string()));
        }
        Ok((name, header.key_len))
    }

    /// Strict full validation of the trace stored under `(name, len)`:
    /// header, key cross-check, checksum, **and** a per-record run of the
    /// full ISA decoder (what `rcmc trace verify` uses — [`TraceDb::load`]
    /// skips the per-record signature check because the checksum already
    /// vouches for bytes this build wrote itself). Returns the stored
    /// instruction count.
    pub fn verify(&self, name: &str, len: u64) -> Result<u64, TraceDbError> {
        if !Self::valid_name(name) {
            return Err(TraceDbError::KeyMismatch);
        }
        let bytes =
            std::fs::read(self.path_of(name, len)).map_err(|e| TraceDbError::Io(e.to_string()))?;
        let (h, t) = decode_file_header_and_body(&bytes)?;
        if h.name != name || h.key_len != len {
            return Err(TraceDbError::KeyMismatch);
        }
        Ok(t.insns.len() as u64)
    }

    /// Every `(name, len)` entry in the store with readable headers,
    /// sorted by name then length. Files whose header does not parse are
    /// skipped (they are invisible to [`TraceDb::load`] too).
    pub fn list(&self) -> Vec<TraceMeta> {
        let mut out = Vec::new();
        let Ok(names) = std::fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in names.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !Self::valid_name(&name) || !entry.path().is_dir() {
                continue;
            }
            let Ok(files) = std::fs::read_dir(entry.path()) else {
                continue;
            };
            for f in files.flatten() {
                let fname = f.file_name().to_string_lossy().into_owned();
                let Some(len) = fname
                    .strip_suffix(".trc")
                    .and_then(|s| s.parse::<u64>().ok())
                else {
                    continue;
                };
                let Ok(bytes) = std::fs::read(f.path()) else {
                    continue;
                };
                let Ok(h) = decode_header(&bytes) else {
                    continue;
                };
                if h.name != name || h.key_len != len {
                    continue;
                }
                out.push(TraceMeta {
                    name: name.clone(),
                    len,
                    insns: h.insn_count,
                    bytes: bytes.len() as u64,
                    trace_version: h.trace_version,
                    halted: h.halted,
                });
            }
        }
        out.sort_by(|a, b| (&a.name, a.len).cmp(&(&b.name, b.len)));
        out
    }

    /// All lengths stored under `name`, ascending ([`TraceDb::list`]
    /// filtered to one workload, header-validated).
    pub fn lens_of(&self, name: &str) -> Vec<u64> {
        self.list()
            .into_iter()
            .filter(|m| m.name == name)
            .map(|m| m.len)
            .collect()
    }

    /// Remove stored traces: every length of `name`, or just `(name,
    /// len)`. Returns how many files were deleted.
    pub fn remove(&self, name: &str, len: Option<u64>) -> usize {
        if !Self::valid_name(name) {
            return 0;
        }
        let lens = match len {
            Some(l) => vec![l],
            None => self.lens_of(name),
        };
        let mut removed = 0;
        for l in lens {
            if std::fs::remove_file(self.path_of(name, l)).is_ok() {
                removed += 1;
            }
        }
        // Best-effort: drop the per-name directory once it is empty.
        let _ = std::fs::remove_dir(self.dir.join(name));
        removed
    }
}

fn write_atomic(p: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = p.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = p.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, p).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Running state of the 4-lane FNV-1a payload checksum: lane *j* folds
/// word *j* of every record (the payload is always a whole number of
/// 32-byte records, so the lanes stay in lockstep). One serial FNV chain
/// would put a multiply's full latency between every 8 bytes — on the
/// warm-start path that chain, not memory, is the bottleneck; four
/// independent lanes give the CPU four chains to overlap. Every single-bit
/// flip still lands in exactly one lane and survives the final mix.
#[derive(Clone, Copy)]
struct Lanes([u64; 4]);

impl Lanes {
    fn new() -> Lanes {
        Lanes([FNV_OFFSET; 4])
    }

    /// Fold one 32-byte record into the four lanes.
    #[inline]
    fn fold(&mut self, record: &[u8]) {
        self.fold_words(record_words(record));
    }

    /// [`Lanes::fold`] on already-loaded words (the streaming decode loop
    /// loads each record once and feeds both the checksum and the decode).
    #[inline]
    fn fold_words(&mut self, words: [u64; 4]) {
        for (lane, word) in self.0.iter_mut().zip(words) {
            *lane ^= word;
            *lane = lane.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mix the lanes into the stored 8-byte checksum.
    fn finish(self) -> u64 {
        self.0
            .into_iter()
            .fold(FNV_OFFSET, |h, l| (h ^ l).wrapping_mul(FNV_PRIME))
    }
}

/// The four logical words of one instruction (what the checksum covers and
/// what both on-disk layouts serialize).
#[inline]
fn logical_words(d: &DynInsn) -> [u64; 4] {
    [
        encode(&d.insn),
        (d.pc as u64) | ((d.next_pc as u64) << 32),
        d.mem_addr,
        0,
    ]
}

/// Append one zero-run-compressed (v2) record: a control byte flagging the
/// nonzero words, then only those words.
#[inline]
fn encode_v2_record(words: [u64; 4], out: &mut Vec<u8>) {
    let mut ctl = 0u8;
    for (w, &word) in words.iter().enumerate() {
        if word != 0 {
            ctl |= 1 << w;
        }
    }
    out.push(ctl);
    for &word in words.iter() {
        if word != 0 {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }
}

/// Decode one v2 record from the front of `b`: the logical words plus the
/// encoded length. Reserved control bits are a malformed record; missing
/// bytes are a truncation (the distinction callers surface to `verify`).
#[inline]
fn decode_v2_record(b: &[u8], idx: usize) -> Result<([u64; 4], usize), TraceDbError> {
    let Some(&ctl) = b.first() else {
        return Err(TraceDbError::Truncated);
    };
    if ctl & !V2_WORD_MASK != 0 {
        return Err(TraceDbError::BadRecord(idx));
    }
    let need = 1 + ctl.count_ones() as usize * 8;
    if b.len() < need {
        return Err(TraceDbError::Truncated);
    }
    let mut words = [0u64; 4];
    let mut off = 1usize;
    for (w, word) in words.iter_mut().enumerate() {
        if ctl & (1 << w) != 0 {
            *word = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
            off += 8;
        }
    }
    Ok((words, off))
}

struct Header {
    format_version: u32,
    trace_version: u32,
    key_len: u64,
    insn_count: u64,
    checksum: u64,
    static_insns: u32,
    halted: bool,
    name: String,
    payload_off: usize,
}

fn payload_offset(name_len: usize) -> usize {
    (HEADER_BASE + name_len).div_ceil(RECORD_BYTES) * RECORD_BYTES
}

/// Serialize one trace into its complete (format-v2) file image.
fn encode_file(
    name: &str,
    key_len: u64,
    insns: &[DynInsn],
    halted: bool,
    statics: usize,
) -> Vec<u8> {
    let payload_off = payload_offset(name.len());
    let mut out = vec![0u8; payload_off];
    out.reserve(insns.len() * (1 + RECORD_BYTES / 2)); // typical ≈ 17 B/insn
    out[0..8].copy_from_slice(MAGIC);
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&TRACE_VERSION.to_le_bytes());
    out[16..24].copy_from_slice(&key_len.to_le_bytes());
    out[24..32].copy_from_slice(&(insns.len() as u64).to_le_bytes());
    // checksum written below, once the payload exists
    out[40..44].copy_from_slice(&(statics as u32).to_le_bytes());
    out[44] = halted as u8;
    out[48..50].copy_from_slice(&(name.len() as u16).to_le_bytes());
    out[HEADER_BASE..HEADER_BASE + name.len()].copy_from_slice(name.as_bytes());
    let mut lanes = Lanes::new();
    for d in insns {
        let words = logical_words(d);
        lanes.fold_words(words);
        encode_v2_record(words, &mut out);
    }
    let sum = lanes.finish();
    out[32..40].copy_from_slice(&sum.to_le_bytes());
    out
}

fn decode_header(bytes: &[u8]) -> Result<Header, TraceDbError> {
    if bytes.len() < HEADER_BASE {
        return Err(TraceDbError::Truncated);
    }
    if &bytes[0..8] != MAGIC {
        return Err(TraceDbError::BadMagic);
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    let format_version = u32_at(8);
    if !READABLE_FORMATS.contains(&format_version) {
        return Err(TraceDbError::WrongFormatVersion(format_version));
    }
    let trace_version = u32_at(12);
    if trace_version != TRACE_VERSION {
        return Err(TraceDbError::WrongTraceVersion(trace_version));
    }
    let name_len = u16::from_le_bytes(bytes[48..50].try_into().unwrap()) as usize;
    let payload_off = payload_offset(name_len);
    if bytes.len() < HEADER_BASE + name_len {
        return Err(TraceDbError::Truncated);
    }
    let name = std::str::from_utf8(&bytes[HEADER_BASE..HEADER_BASE + name_len])
        .map_err(|_| TraceDbError::KeyMismatch)?
        .to_string();
    Ok(Header {
        format_version,
        trace_version,
        key_len: u64_at(16),
        insn_count: u64_at(24),
        checksum: u64_at(32),
        static_insns: u32_at(40),
        halted: bytes[44] != 0,
        name,
        payload_off,
    })
}

/// Byte-indexed decode tables for the record decode loop. `Opcode::from_u8`
/// is a linear scan over the opcode list and the register decode is a
/// compare chain; at one opcode plus three register decodes per record
/// those branches would dominate the whole warm-start path, so both become
/// single L1-resident table loads (`None` marks invalid bytes).
struct DecodeLuts {
    op: [Option<Opcode>; 256],
    reg: [Option<Option<Reg>>; 256],
}

fn decode_luts() -> &'static DecodeLuts {
    static LUTS: std::sync::OnceLock<DecodeLuts> = std::sync::OnceLock::new();
    LUTS.get_or_init(|| {
        let mut t = DecodeLuts {
            op: [None; 256],
            reg: [None; 256],
        };
        for &op in Opcode::ALL {
            t.op[op as u8 as usize] = Some(op);
        }
        for b in 0..=255u8 {
            t.reg[b as usize] = match b {
                NO_REG => Some(None),
                n if (n as usize) < NUM_INT_REGS => Some(Some(Reg::Int(n))),
                n if (n as usize) < 2 * NUM_INT_REGS => Some(Some(Reg::Fp(n - NUM_INT_REGS as u8))),
                _ => None,
            };
        }
        t
    })
}

/// Decode one 32-byte record. The register/opcode fields are range-checked
/// through the tables (an out-of-range byte can never build an invalid
/// `Reg`), but the operand signature is *not* re-validated per record on
/// this path — the checksum already vouches for the bytes, and
/// [`decode_file`]'s `strict` mode (used by `import`/`verify`) runs the
/// full ISA decoder instead.
#[inline]
fn decode_record(r: &[u8], lut: &DecodeLuts) -> Option<DynInsn> {
    decode_words(record_words(r), lut)
}

/// The four little-endian words of one 32-byte record.
#[inline]
fn record_words(r: &[u8]) -> [u64; 4] {
    let w = |o: usize| u64::from_le_bytes(r[o..o + 8].try_into().unwrap());
    [w(0), w(8), w(16), w(24)]
}

/// [`decode_record`] on already-loaded words.
#[inline]
fn decode_words(words: [u64; 4], lut: &DecodeLuts) -> Option<DynInsn> {
    let word = words[0];
    Some(DynInsn {
        insn: Insn {
            op: lut.op[(word & 0xff) as usize]?,
            rd: lut.reg[(word >> 8) as u8 as usize]?,
            rs1: lut.reg[(word >> 16) as u8 as usize]?,
            rs2: lut.reg[(word >> 24) as u8 as usize]?,
            imm: (word >> 32) as u32 as i32,
        },
        pc: words[1] as u32,
        next_pc: (words[1] >> 32) as u32,
        mem_addr: words[2],
    })
}

fn decode_body(bytes: &[u8], h: &Header, strict: bool) -> Result<StoredTrace, TraceDbError> {
    if bytes.len() < h.payload_off {
        return Err(TraceDbError::Truncated);
    }
    let payload = &bytes[h.payload_off..];
    // Checksum and decode in ONE pass: the payload is far bigger than any
    // cache level, so a separate checksum sweep would stream the whole
    // file through memory twice. Decoding ahead of verification is safe —
    // `decode_record` range-checks every field, nothing partially decoded
    // escapes, and the result is discarded unless the sums match.
    let mut lanes = Lanes::new();
    let lut = decode_luts();
    let mut insns;
    if h.format_version == 1 {
        let want = h
            .insn_count
            .checked_mul(RECORD_BYTES as u64)
            .and_then(|n| n.checked_add(h.payload_off as u64))
            .ok_or(TraceDbError::Truncated)?;
        if (bytes.len() as u64) != want {
            return Err(TraceDbError::Truncated);
        }
        insns = Vec::with_capacity(h.insn_count as usize);
        for (i, r) in payload.chunks_exact(RECORD_BYTES).enumerate() {
            lanes.fold(r);
            if strict {
                // Full ISA decode: operand-signature validation included.
                let word = u64::from_le_bytes(r[0..8].try_into().unwrap());
                rcmc_isa::decode(word).map_err(|_| TraceDbError::BadRecord(i))?;
            }
            insns.push(decode_record(r, lut).ok_or(TraceDbError::BadRecord(i))?);
        }
    } else {
        // v2: variable-width records, at least one byte each — which also
        // bounds a hostile header's instruction count by the payload size
        // before any allocation happens.
        if (payload.len() as u64) < h.insn_count {
            return Err(TraceDbError::Truncated);
        }
        insns = Vec::with_capacity(h.insn_count as usize);
        let mut off = 0usize;
        for i in 0..h.insn_count as usize {
            let (words, used) = decode_v2_record(&payload[off..], i)?;
            off += used;
            lanes.fold_words(words);
            if strict {
                rcmc_isa::decode(words[0]).map_err(|_| TraceDbError::BadRecord(i))?;
            }
            insns.push(decode_words(words, lut).ok_or(TraceDbError::BadRecord(i))?);
        }
        if off != payload.len() {
            return Err(TraceDbError::Truncated);
        }
    }
    if lanes.finish() != h.checksum {
        return Err(TraceDbError::ChecksumMismatch);
    }
    Ok(StoredTrace {
        insns,
        halted: h.halted,
        static_insns: h.static_insns as usize,
    })
}

/// Whole-buffer decode, restructured for streaming: on the hot load path the
/// payload flows through `scratch`, capped at [`STREAM_CHUNK`] bytes, so
/// the only file-sized memory the warm start touches is the instruction
/// vector it returns. Checksum, key cross-check and per-record validation
/// are identical to the whole-buffer path; a file that shrinks mid-read
/// surfaces as [`TraceDbError::Truncated`] like any other short file.
fn stream_decode_file(
    path: &std::path::Path,
    expect: (&str, u64),
    scratch: &mut Vec<u8>,
) -> Result<StoredTrace, TraceDbError> {
    use std::io::Read;
    let io_err = |e: std::io::Error| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceDbError::Truncated
        } else {
            TraceDbError::Io(e.to_string())
        }
    };
    let mut f = std::fs::File::open(path).map_err(io_err)?;
    let file_len = f.metadata().map_err(io_err)?.len();

    // Header region first: the fixed 64 bytes tell us how long the name
    // (and so the whole header) is; then re-parse through `decode_header`
    // so both paths share one set of rejection rules.
    scratch.clear();
    scratch.resize(HEADER_BASE, 0);
    f.read_exact(scratch).map_err(io_err)?;
    let name_len = u16::from_le_bytes(scratch[48..50].try_into().unwrap()) as usize;
    let payload_off = payload_offset(name_len);
    scratch.resize(payload_off, 0);
    f.read_exact(&mut scratch[HEADER_BASE..]).map_err(io_err)?;
    let h = decode_header(scratch)?;
    if h.name != expect.0 || h.key_len != expect.1 {
        return Err(TraceDbError::KeyMismatch);
    }

    let lut = decode_luts();
    let mut lanes = Lanes::new();
    let mut insns;
    if h.format_version == 1 {
        let want = h
            .insn_count
            .checked_mul(RECORD_BYTES as u64)
            .and_then(|n| n.checked_add(payload_off as u64))
            .ok_or(TraceDbError::Truncated)?;
        if file_len != want {
            return Err(TraceDbError::Truncated);
        }
        insns = Vec::with_capacity(h.insn_count as usize);
        let mut remaining = h.insn_count as usize * RECORD_BYTES;
        scratch.clear();
        scratch.resize(STREAM_CHUNK.min(remaining), 0);
        let mut idx = 0usize;
        while remaining > 0 {
            let take = STREAM_CHUNK.min(remaining);
            f.read_exact(&mut scratch[..take]).map_err(io_err)?;
            for r in scratch[..take].chunks_exact(RECORD_BYTES) {
                let words = record_words(r);
                lanes.fold_words(words);
                insns.push(decode_words(words, lut).ok_or(TraceDbError::BadRecord(idx))?);
                idx += 1;
            }
            remaining -= take;
        }
    } else {
        // v2: variable-width records. Stream through the scratch chunk with
        // a carry — a record is at most V2_MAX_RECORD bytes, so topping the
        // window up whenever fewer remain guarantees the next record is
        // contiguous. One byte per record minimum bounds a hostile count.
        let payload_len = file_len - payload_off as u64;
        if payload_len < h.insn_count {
            return Err(TraceDbError::Truncated);
        }
        insns = Vec::with_capacity(h.insn_count as usize);
        let mut remaining = payload_len as usize;
        scratch.clear();
        scratch.resize(STREAM_CHUNK, 0);
        let (mut pos, mut valid) = (0usize, 0usize);
        for i in 0..h.insn_count as usize {
            if valid - pos < V2_MAX_RECORD && remaining > 0 {
                scratch.copy_within(pos..valid, 0);
                valid -= pos;
                pos = 0;
                let take = (STREAM_CHUNK - valid).min(remaining);
                f.read_exact(&mut scratch[valid..valid + take])
                    .map_err(io_err)?;
                valid += take;
                remaining -= take;
            }
            let (words, used) = decode_v2_record(&scratch[pos..valid], i)?;
            pos += used;
            lanes.fold_words(words);
            insns.push(decode_words(words, lut).ok_or(TraceDbError::BadRecord(i))?);
        }
        if pos != valid || remaining > 0 {
            return Err(TraceDbError::Truncated);
        }
    }
    if lanes.finish() != h.checksum {
        return Err(TraceDbError::ChecksumMismatch);
    }
    Ok(StoredTrace {
        insns,
        halted: h.halted,
        static_insns: h.static_insns as usize,
    })
}

/// Payload chunk size for [`stream_decode_file`]: a multiple of
/// [`RECORD_BYTES`] small enough to live in mid-level cache.
const STREAM_CHUNK: usize = 256 * 1024;

/// Decode a complete file image, cross-checking the embedded key against
/// `expect` when loading by key (a renamed or misplaced file must miss).
/// The production load path is [`stream_decode_file`]; this whole-buffer
/// twin stays as the reference implementation the codec tests exercise.
#[cfg(test)]
fn decode_file(bytes: &[u8], expect: Option<(&str, u64)>) -> Result<StoredTrace, TraceDbError> {
    let h = decode_header(bytes)?;
    if let Some((name, len)) = expect {
        if h.name != name || h.key_len != len {
            return Err(TraceDbError::KeyMismatch);
        }
    }
    decode_body(bytes, &h, false)
}

/// Strict decode for `import`: header plus a fully ISA-validated body.
fn decode_file_header_and_body(bytes: &[u8]) -> Result<(Header, StoredTrace), TraceDbError> {
    let h = decode_header(bytes)?;
    let t = decode_body(bytes, &h, true)?;
    Ok((h, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmc_isa::{Opcode, Reg};

    fn sample_trace() -> Trace {
        let r = |x| Some(Reg::int(x));
        let f = |x| Some(Reg::fp(x));
        let insns = vec![
            DynInsn {
                insn: Insn::new(Opcode::Movi, r(1), None, None, -7),
                pc: 0,
                next_pc: 1,
                mem_addr: 0,
            },
            DynInsn {
                insn: Insn::new(Opcode::Fld, f(2), r(1), None, 16),
                pc: 1,
                next_pc: 2,
                mem_addr: 0xdead_beef_cafe,
            },
            DynInsn {
                insn: Insn::new(Opcode::Bne, None, r(1), r(0), -2),
                pc: 2,
                next_pc: 1,
                mem_addr: 0,
            },
        ];
        Trace {
            insns,
            halted: true,
            static_insns: 4,
        }
    }

    fn temp_db(tag: &str) -> TraceDb {
        let dir = std::env::temp_dir().join(format!("rcmc-tdb-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TraceDb::at(dir)
    }

    /// Reference v1 encoder (the pre-compression layout), kept so the
    /// fallthrough decode path is tested against real v1 images.
    fn encode_file_v1(
        name: &str,
        key_len: u64,
        insns: &[DynInsn],
        halted: bool,
        statics: usize,
    ) -> Vec<u8> {
        let payload_off = payload_offset(name.len());
        let mut out = vec![0u8; payload_off + insns.len() * RECORD_BYTES];
        out[0..8].copy_from_slice(MAGIC);
        out[8..12].copy_from_slice(&1u32.to_le_bytes());
        out[12..16].copy_from_slice(&TRACE_VERSION.to_le_bytes());
        out[16..24].copy_from_slice(&key_len.to_le_bytes());
        out[24..32].copy_from_slice(&(insns.len() as u64).to_le_bytes());
        out[40..44].copy_from_slice(&(statics as u32).to_le_bytes());
        out[44] = halted as u8;
        out[48..50].copy_from_slice(&(name.len() as u16).to_le_bytes());
        out[HEADER_BASE..HEADER_BASE + name.len()].copy_from_slice(name.as_bytes());
        let mut lanes = Lanes::new();
        for (i, d) in insns.iter().enumerate() {
            let r = &mut out[payload_off + i * RECORD_BYTES..payload_off + (i + 1) * RECORD_BYTES];
            let words = logical_words(d);
            lanes.fold_words(words);
            for (w, word) in words.into_iter().enumerate() {
                r[w * 8..(w + 1) * 8].copy_from_slice(&word.to_le_bytes());
            }
        }
        out[32..40].copy_from_slice(&lanes.finish().to_le_bytes());
        out
    }

    #[test]
    fn roundtrip_in_memory() {
        let t = sample_trace();
        let bytes = encode_file("x", 99, &t.insns, t.halted, t.static_insns);
        let back = decode_file(&bytes, Some(("x", 99))).unwrap();
        assert_eq!(back.insns, t.insns);
        assert!(back.halted);
        assert_eq!(back.static_insns, 4);
    }

    #[test]
    fn v1_files_fall_through_and_decode_identically() {
        let t = sample_trace();
        let v1 = encode_file_v1("x", 99, &t.insns, t.halted, t.static_insns);
        let v2 = encode_file("x", 99, &t.insns, t.halted, t.static_insns);
        // Same content, same checksum (it covers the logical words), two
        // layouts — and the warm loader must accept both.
        assert_eq!(v1[32..40], v2[32..40], "checksum is layout-independent");
        let from_v1 = decode_file(&v1, Some(("x", 99))).unwrap();
        let from_v2 = decode_file(&v2, Some(("x", 99))).unwrap();
        assert_eq!(from_v1.insns, from_v2.insns);
        assert_eq!(from_v1.insns, t.insns);
        // The on-disk streaming path falls through too.
        let db = temp_db("v1fall");
        let p = db.dir().join("x").join("99.trc");
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, &v1).unwrap();
        assert_eq!(*db.load("x", 99).unwrap(), t.insns);
        assert_eq!(db.verify("x", 99).unwrap(), t.insns.len() as u64);
        let _ = std::fs::remove_dir_all(db.dir());
    }

    #[test]
    fn zero_runs_compress() {
        let t = sample_trace();
        let v1 = encode_file_v1("x", 99, &t.insns, t.halted, t.static_insns);
        let v2 = encode_file("x", 99, &t.insns, t.halted, t.static_insns);
        assert!(
            v2.len() < v1.len(),
            "v2 ({}) must be smaller than v1 ({})",
            v2.len(),
            v1.len()
        );
        // The sample has one memory instruction out of three: records cost
        // 1 + 16 (non-mem) or 1 + 24 (mem) bytes instead of a flat 32.
        let payload = v2.len() - payload_offset(1);
        assert_eq!(payload, (1 + 16) * 2 + (1 + 24));
    }

    #[test]
    fn v2_reserved_control_bits_are_bad_records() {
        let t = sample_trace();
        let mut bytes = encode_file("x", 99, &t.insns, t.halted, t.static_insns);
        let off = payload_offset(1);
        bytes[off] |= 0x80; // reserved bit in the first record's control byte
        assert_eq!(
            decode_file(&bytes, Some(("x", 99))).unwrap_err(),
            TraceDbError::BadRecord(0)
        );
        // Trailing garbage is a truncation-class mismatch, not a silent pass.
        let mut extra = encode_file("x", 99, &t.insns, t.halted, t.static_insns);
        extra.push(0x00);
        assert_eq!(
            decode_file(&extra, Some(("x", 99))).unwrap_err(),
            TraceDbError::Truncated
        );
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let db = temp_db("rt");
        let t = sample_trace();
        assert!(db.save("bench-a", 1000, &t));
        let got = db.load("bench-a", 1000).expect("stored trace must load");
        assert_eq!(*got, t.insns);
        assert!(db.contains("bench-a", 1000));
        assert!(!db.contains("bench-a", 1001));
        let _ = std::fs::remove_dir_all(db.dir());
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let t = sample_trace();
        let bytes = encode_file("x", 99, &t.insns, t.halted, t.static_insns);
        assert_eq!(
            decode_file(&bytes, Some(("y", 99))).unwrap_err(),
            TraceDbError::KeyMismatch
        );
        assert_eq!(
            decode_file(&bytes, Some(("x", 98))).unwrap_err(),
            TraceDbError::KeyMismatch
        );
    }

    #[test]
    fn invalid_names_rejected() {
        for bad in ["", ".", "../x", "a/b", "a b", &"x".repeat(129)] {
            assert!(!TraceDb::valid_name(bad), "{bad:?} must be invalid");
        }
        for good in ["swim", "my_trace-1.2", "B9"] {
            assert!(TraceDb::valid_name(good), "{good:?} must be valid");
        }
    }

    #[test]
    fn list_and_remove() {
        let db = temp_db("list");
        let t = sample_trace();
        assert!(db.save("aaa", 10, &t));
        assert!(db.save("aaa", 20, &t));
        assert!(db.save("bbb", 10, &t));
        let metas = db.list();
        assert_eq!(
            metas
                .iter()
                .map(|m| (m.name.as_str(), m.len))
                .collect::<Vec<_>>(),
            vec![("aaa", 10), ("aaa", 20), ("bbb", 10)]
        );
        assert_eq!(metas[0].insns, 3);
        assert_eq!(db.lens_of("aaa"), vec![10, 20]);
        assert_eq!(db.remove("aaa", Some(20)), 1);
        assert_eq!(db.remove("aaa", None), 1);
        assert_eq!(db.remove("aaa", None), 0);
        assert_eq!(db.list().len(), 1);
        let _ = std::fs::remove_dir_all(db.dir());
    }

    #[test]
    fn import_validates_and_renames() {
        let db = temp_db("imp");
        let t = sample_trace();
        let bytes = encode_file("orig", 42, &t.insns, t.halted, t.static_insns);
        let (name, len) = db.import(&bytes, Some("renamed")).unwrap();
        assert_eq!((name.as_str(), len), ("renamed", 42));
        assert_eq!(*db.load("renamed", 42).unwrap(), t.insns);
        // A corrupted file must be rejected outright.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(
            db.import(&bad, None).unwrap_err(),
            TraceDbError::ChecksumMismatch
        );
        let _ = std::fs::remove_dir_all(db.dir());
    }
}
