//! Differential test: the set-associative cache must behave exactly like a
//! naive reference LRU model on arbitrary address streams.

use proptest::prelude::*;
use rcmc_uarch::{CacheConfig, SetAssocCache};

/// Straight-line reference model: a vector of (block, last-use) per set.
struct RefCache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    content: Vec<Vec<(u64, u64)>>,
    tick: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> Self {
        RefCache {
            sets: cfg.sets(),
            ways: cfg.ways,
            line_shift: cfg.line.trailing_zeros(),
            content: vec![Vec::new(); cfg.sets()],
            tick: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let block = addr >> self.line_shift;
        let set = (block as usize) & (self.sets - 1);
        let lines = &mut self.content[set];
        if let Some(e) = lines.iter_mut().find(|(b, _)| *b == block) {
            e.1 = self.tick;
            return true;
        }
        if lines.len() == self.ways {
            let (lru_idx, _) = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .unwrap();
            lines.remove(lru_idx);
        }
        lines.push((block, self.tick));
        false
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru(
        addrs in prop::collection::vec(0u64..(1 << 14), 1..2000),
        ways in 1usize..=4,
    ) {
        let cfg = CacheConfig { size: 256 * ways, ways, line: 32, latency: 1 };
        let mut dut = SetAssocCache::new(cfg);
        let mut reference = RefCache::new(&cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let hit_dut = dut.access(a);
            let hit_ref = reference.access(a);
            prop_assert_eq!(hit_dut, hit_ref, "divergence at access {} (addr {:#x})", i, a);
        }
    }

    #[test]
    fn miss_count_bounded_by_unique_blocks_plus_evictions(
        addrs in prop::collection::vec(0u64..(1 << 12), 1..500),
    ) {
        let cfg = CacheConfig { size: 4096, ways: 4, line: 32, latency: 1 };
        let mut dut = SetAssocCache::new(cfg);
        for &a in &addrs {
            dut.access(a);
        }
        let mut blocks: Vec<u64> = addrs.iter().map(|a| a >> 5).collect();
        blocks.sort_unstable();
        blocks.dedup();
        // At least one miss per distinct block; never more misses than
        // accesses.
        prop_assert!(dut.misses >= blocks.len() as u64);
        prop_assert!(dut.misses <= addrs.len() as u64);
    }
}
