//! # rcmc-uarch — front-end and memory-system component library
//!
//! Reusable, individually-tested microarchitecture models configured to the
//! paper's Table 2 by default:
//!
//! * [`bpred`] — 2-bit bimodal, gshare, and the hybrid predictor
//!   (2K gshare + 2K bimodal + 1K selector), a 2048-entry 4-way [`bpred::Btb`]
//!   and a return-address stack.
//! * [`cache`] — set-associative caches with LRU replacement and the
//!   L1I/L1D/L2 hierarchy latency model (including the L2 inter-chunk
//!   penalty and the ±1-cycle cluster↔cache transfer).
//!
//! The clustered back end (`rcmc-core`) composes these; nothing here knows
//! about clusters.

pub mod bpred;
pub mod cache;

pub use bpred::{Bimodal, Btb, FrontEndPredictor, Gshare, HybridPredictor, PredictorConfig, Ras};
pub use cache::{CacheConfig, MemConfig, MemHierarchy, SetAssocCache};
