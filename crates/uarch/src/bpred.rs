//! Branch prediction: 2-bit bimodal, gshare, hybrid with selector, BTB, RAS.
//!
//! Table 2: "Hybrid 2K Gshare, 2K bimodal, 1K selector; BTB: 2048 entries,
//! 4-way". Because the timing model is stall-on-mispredict (no wrong path),
//! predictor state is updated with the true outcome as soon as the branch is
//! fetched; this is the standard trace-driven discipline and is identical for
//! both architectures under comparison.

use rcmc_isa::{Insn, Opcode, Reg};

/// 2-bit saturating counter helpers.
#[inline]
fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

/// Classic bimodal predictor: a table of 2-bit counters indexed by pc.
pub struct Bimodal {
    table: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// `entries` must be a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        Bimodal {
            table: vec![1; entries],
            mask: entries - 1,
        }
    }

    #[inline]
    fn idx(&self, pc: u32) -> usize {
        pc as usize & self.mask
    }

    /// Predicted direction for the branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: u32) -> bool {
        counter_taken(self.table[self.idx(pc)])
    }

    /// Train with the actual outcome.
    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool) {
        let i = self.idx(pc);
        self.table[i] = counter_update(self.table[i], taken);
    }
}

/// Gshare: 2-bit counters indexed by pc XOR global history.
pub struct Gshare {
    table: Vec<u8>,
    mask: usize,
    hist: u32,
    hist_mask: u32,
}

impl Gshare {
    /// `entries` must be a power of two; history length = log2(entries).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        let bits = entries.trailing_zeros();
        Gshare {
            table: vec![1; entries],
            mask: entries - 1,
            hist: 0,
            hist_mask: (1 << bits) - 1,
        }
    }

    #[inline]
    fn idx(&self, pc: u32) -> usize {
        ((pc ^ self.hist) as usize) & self.mask
    }

    /// Predicted direction for the branch at `pc` under current history.
    #[inline]
    pub fn predict(&self, pc: u32) -> bool {
        counter_taken(self.table[self.idx(pc)])
    }

    /// Train with the actual outcome and shift it into the history.
    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool) {
        let i = self.idx(pc);
        self.table[i] = counter_update(self.table[i], taken);
        self.hist = ((self.hist << 1) | taken as u32) & self.hist_mask;
    }

    /// Current global history (for tests).
    pub fn history(&self) -> u32 {
        self.hist
    }
}

/// Hybrid predictor: gshare + bimodal + 2-bit chooser table.
pub struct HybridPredictor {
    gshare: Gshare,
    bimodal: Bimodal,
    selector: Vec<u8>,
    sel_mask: usize,
}

/// Sizing for [`HybridPredictor`] and [`Btb`].
#[derive(Clone, Copy, Debug)]
pub struct PredictorConfig {
    /// Gshare table entries.
    pub gshare_entries: usize,
    /// Bimodal table entries.
    pub bimodal_entries: usize,
    /// Selector table entries.
    pub selector_entries: usize,
    /// BTB total entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for PredictorConfig {
    /// Table 2 sizing.
    fn default() -> Self {
        PredictorConfig {
            gshare_entries: 2048,
            bimodal_entries: 2048,
            selector_entries: 1024,
            btb_entries: 2048,
            btb_ways: 4,
            ras_depth: 16,
        }
    }
}

impl HybridPredictor {
    /// Build from a config (see [`PredictorConfig::default`]).
    pub fn new(cfg: &PredictorConfig) -> Self {
        assert!(cfg.selector_entries.is_power_of_two());
        HybridPredictor {
            gshare: Gshare::new(cfg.gshare_entries),
            bimodal: Bimodal::new(cfg.bimodal_entries),
            selector: vec![2; cfg.selector_entries], // weakly prefer gshare
            sel_mask: cfg.selector_entries - 1,
        }
    }

    /// Predicted direction.
    pub fn predict(&self, pc: u32) -> bool {
        let use_gshare = counter_taken(self.selector[pc as usize & self.sel_mask]);
        if use_gshare {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    /// Train all components; the selector moves toward whichever component
    /// was right (no move if both agree).
    pub fn update(&mut self, pc: u32, taken: bool) {
        let g = self.gshare.predict(pc);
        let b = self.bimodal.predict(pc);
        let i = pc as usize & self.sel_mask;
        if g != b {
            self.selector[i] = counter_update(self.selector[i], g == taken);
        }
        self.gshare.update(pc, taken);
        self.bimodal.update(pc, taken);
    }
}

/// Branch target buffer: set-associative, LRU, tagged by pc.
pub struct Btb {
    sets: usize,
    ways: usize,
    /// tag per (set, way); `u32::MAX` = invalid.
    tags: Vec<u32>,
    targets: Vec<u32>,
    /// LRU stamps.
    stamp: Vec<u64>,
    tick: u64,
}

impl Btb {
    /// `entries` total entries across `ways` ways; `entries/ways` must be a
    /// power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        let sets = entries / ways;
        assert!(sets.is_power_of_two() && sets > 0);
        Btb {
            sets,
            ways,
            tags: vec![u32::MAX; entries],
            targets: vec![0; entries],
            stamp: vec![0; entries],
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, pc: u32) -> usize {
        (pc as usize) & (self.sets - 1)
    }

    /// Look up the predicted target for the control instruction at `pc`.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        let s = self.set_of(pc);
        self.tick += 1;
        for w in 0..self.ways {
            let i = s * self.ways + w;
            if self.tags[i] == pc {
                self.stamp[i] = self.tick;
                return Some(self.targets[i]);
            }
        }
        None
    }

    /// Install/refresh the target for `pc` (LRU victim selection).
    pub fn update(&mut self, pc: u32, target: u32) {
        let s = self.set_of(pc);
        self.tick += 1;
        let mut victim = s * self.ways;
        for w in 0..self.ways {
            let i = s * self.ways + w;
            if self.tags[i] == pc {
                self.targets[i] = target;
                self.stamp[i] = self.tick;
                return;
            }
            if self.stamp[i] < self.stamp[victim] {
                victim = i;
            }
        }
        self.tags[victim] = pc;
        self.targets[victim] = target;
        self.stamp[victim] = self.tick;
    }
}

/// Return address stack. Overflow wraps (oldest entry lost), underflow
/// predicts "no idea" (None).
pub struct Ras {
    stack: Vec<u32>,
    depth: usize,
}

impl Ras {
    /// Stack with the given depth.
    pub fn new(depth: usize) -> Self {
        Ras {
            stack: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Push a return address (on calls).
    pub fn push(&mut self, addr: u32) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pop the predicted return address (on returns).
    pub fn pop(&mut self) -> Option<u32> {
        self.stack.pop()
    }
}

/// Complete front-end prediction: direction + target for any control
/// instruction, with the call/return convention from `rcmc-asm`
/// (`jal r31` = call, `jalr _, r31` = return).
pub struct FrontEndPredictor {
    hybrid: HybridPredictor,
    btb: Btb,
    ras: Ras,
    /// Statistics: conditional branches seen / mispredicted.
    pub cond_seen: u64,
    /// Mispredicted conditional branches.
    pub cond_miss: u64,
    /// Indirect jumps seen / mispredicted.
    pub ind_seen: u64,
    /// Mispredicted indirect jumps.
    pub ind_miss: u64,
}

impl FrontEndPredictor {
    /// Build from config.
    pub fn new(cfg: &PredictorConfig) -> Self {
        FrontEndPredictor {
            hybrid: HybridPredictor::new(cfg),
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            ras: Ras::new(cfg.ras_depth),
            cond_seen: 0,
            cond_miss: 0,
            ind_seen: 0,
            ind_miss: 0,
        }
    }

    /// Predict the control instruction at `pc`, train with the actual
    /// `(taken, next_pc)` outcome, and return whether the prediction was
    /// **correct** (direction and target).
    ///
    /// Non-control instructions always return true.
    pub fn predict_and_train(&mut self, pc: u32, insn: &Insn, taken: bool, next_pc: u32) -> bool {
        match insn.op {
            op if op.is_cond_branch() => {
                self.cond_seen += 1;
                let pred = self.hybrid.predict(pc);
                self.hybrid.update(pc, taken);
                // Direct targets are computed at decode; only direction can
                // mispredict.
                let correct = pred == taken;
                if !correct {
                    self.cond_miss += 1;
                }
                correct
            }
            Opcode::Jal => {
                // Direct target, always correct; push RAS on calls.
                if insn.rd == Some(Reg::Int(31)) {
                    self.ras.push(pc + 1);
                }
                true
            }
            Opcode::Jalr => {
                self.ind_seen += 1;
                let is_return = insn.rs1 == Some(Reg::Int(31));
                let pred = if is_return {
                    self.ras.pop()
                } else {
                    self.btb.lookup(pc)
                };
                if insn.rd == Some(Reg::Int(31)) {
                    self.ras.push(pc + 1);
                }
                self.btb.update(pc, next_pc);
                let correct = pred == Some(next_pc);
                if !correct {
                    self.ind_miss += 1;
                }
                correct
            }
            _ => true,
        }
    }

    /// Misses per 1000 control-flow predictions (for reports).
    pub fn miss_rate(&self) -> f64 {
        let seen = self.cond_seen + self.ind_seen;
        if seen == 0 {
            0.0
        } else {
            (self.cond_miss + self.ind_miss) as f64 / seen as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmc_isa::Insn;
    use rcmc_isa::Opcode;

    #[test]
    fn bimodal_learns_bias() {
        let mut b = Bimodal::new(64);
        for _ in 0..4 {
            b.update(10, true);
        }
        assert!(b.predict(10));
        for _ in 0..4 {
            b.update(10, false);
        }
        assert!(!b.predict(10));
    }

    #[test]
    fn bimodal_saturates() {
        let mut b = Bimodal::new(64);
        for _ in 0..100 {
            b.update(5, true);
        }
        // two not-taken must be needed to flip after saturation
        b.update(5, false);
        assert!(b.predict(5));
        b.update(5, false);
        assert!(!b.predict(5));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // A strict T/N/T/N pattern defeats bimodal but gshare keys on history.
        let mut g = Gshare::new(256);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            let pred = g.predict(77);
            if i >= 200 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            g.update(77, taken);
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "gshare accuracy {correct}/{total}"
        );
    }

    #[test]
    fn bimodal_fails_alternating_pattern() {
        let mut b = Bimodal::new(256);
        let mut correct = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            if b.predict(77) == taken && i >= 200 {
                correct += 1;
            }
            b.update(77, taken);
        }
        assert!(
            correct <= 110,
            "bimodal should not learn alternation: {correct}"
        );
    }

    #[test]
    fn hybrid_tracks_best_component() {
        let cfg = PredictorConfig::default();
        let mut h = HybridPredictor::new(&cfg);
        // Alternating pattern: hybrid should converge to gshare's accuracy.
        let mut correct = 0;
        let mut total = 0;
        for i in 0..600u32 {
            let taken = i % 2 == 0;
            let pred = h.predict(99);
            if i >= 300 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            h.update(99, taken);
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "hybrid accuracy {correct}/{total}"
        );
    }

    #[test]
    fn gshare_history_shifts() {
        let mut g = Gshare::new(16);
        g.update(0, true);
        g.update(0, false);
        g.update(0, true);
        assert_eq!(g.history() & 0b111, 0b101);
    }

    #[test]
    fn btb_hits_after_install() {
        let mut btb = Btb::new(64, 4);
        assert_eq!(btb.lookup(100), None);
        btb.update(100, 7);
        assert_eq!(btb.lookup(100), Some(7));
        btb.update(100, 9);
        assert_eq!(btb.lookup(100), Some(9));
    }

    #[test]
    fn btb_lru_eviction() {
        let mut btb = Btb::new(8, 4); // 2 sets, 4 ways

        // Fill set 0 (pcs ≡ 0 mod 2) with 4 entries, then add a 5th.
        for pc in [0u32, 2, 4, 6] {
            btb.update(pc, pc + 1);
        }
        // Touch 0,2,4 so 6 is LRU.
        btb.lookup(0);
        btb.lookup(2);
        btb.lookup(4);
        btb.update(8, 99);
        assert_eq!(btb.lookup(8), Some(99));
        assert_eq!(btb.lookup(6), None, "LRU way should have been evicted");
        assert_eq!(btb.lookup(0), Some(1));
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut ras = Ras::new(4);
        ras.push(10);
        ras.push(20);
        assert_eq!(ras.pop(), Some(20));
        assert_eq!(ras.pop(), Some(10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn frontend_calls_and_returns() {
        let cfg = PredictorConfig::default();
        let mut fe = FrontEndPredictor::new(&cfg);
        let r = |n| Some(Reg::int(n));
        let call = Insn::new(Opcode::Jal, r(31), None, None, 10);
        let ret = Insn::new(Opcode::Jalr, r(0), r(31), None, 0);
        // call at pc 5 -> target 16; return from pc 16 back to 6.
        assert!(fe.predict_and_train(5, &call, true, 16));
        assert!(
            fe.predict_and_train(16, &ret, true, 6),
            "RAS should predict the return"
        );
        // A return with an empty RAS (and cold BTB) mispredicts.
        assert!(!fe.predict_and_train(30, &ret, true, 77));
        assert_eq!(fe.ind_miss, 1);
    }

    #[test]
    fn frontend_counts_cond_misses() {
        let cfg = PredictorConfig::default();
        let mut fe = FrontEndPredictor::new(&cfg);
        let r = |n| Some(Reg::int(n));
        let br = Insn::new(Opcode::Beq, None, r(1), r(2), 5);
        // Loop branch taken 50 times: predictor warms up quickly.
        let mut misses = 0;
        for _ in 0..50 {
            if !fe.predict_and_train(40, &br, true, 46) {
                misses += 1;
            }
        }
        assert!(
            misses <= 2,
            "warm loop branch should be predictable, misses={misses}"
        );
        assert_eq!(fe.cond_seen, 50);
    }
}
