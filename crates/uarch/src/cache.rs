//! Set-associative caches and the Table 2 memory hierarchy.
//!
//! Timing-only model: caches track tags (no data — values come from the
//! functional oracle). Latencies follow Table 2:
//!
//! * L1 I-cache 64KB/2-way/32B, 1 cycle
//! * L1 D-cache 32KB/4-way/32B, 2 cycles, 4 R/W ports
//! * unified L2 512KB/4-way/64B: 10-cycle hit, 100-cycle miss (memory),
//!   2-cycle inter-chunk for the second 32B chunk of a 64B line
//! * ±1 cycle to send the address to / return the datum from the
//!   centralized D-cache/LSQ, identical for all clusters (§3.3)

/// Geometry + latency of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Access latency in cycles (hit).
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.ways * self.line)
    }
}

/// Tag-only set-associative cache with true-LRU replacement.
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: usize,
    line_shift: u32,
    /// tag per (set, way); `u64::MAX` = invalid.
    tags: Vec<u64>,
    stamp: Vec<u64>,
    tick: u64,
    /// Accesses and misses (for reports).
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl SetAssocCache {
    /// Build; panics unless sets and line are powers of two.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "sets must be a power of two (got {sets})"
        );
        assert!(cfg.line.is_power_of_two());
        SetAssocCache {
            cfg,
            sets,
            line_shift: cfg.line.trailing_zeros(),
            tags: vec![u64::MAX; sets * cfg.ways],
            stamp: vec![0; sets * cfg.ways],
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The config this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access `addr`; returns true on hit. Misses fill the line (LRU victim).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let block = addr >> self.line_shift;
        let set = (block as usize) & (self.sets - 1);
        let base = set * self.cfg.ways;
        for w in 0..self.cfg.ways {
            if self.tags[base + w] == block {
                self.stamp[base + w] = self.tick;
                return true;
            }
        }
        self.misses += 1;
        // LRU victim fill.
        let mut victim = base;
        for w in 1..self.cfg.ways {
            if self.stamp[base + w] < self.stamp[victim] {
                victim = base + w;
            }
        }
        self.tags[victim] = block;
        self.stamp[victim] = self.tick;
        false
    }

    /// Probe without updating state (for tests).
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = (block as usize) & (self.sets - 1);
        let base = set * self.cfg.ways;
        (0..self.cfg.ways).any(|w| self.tags[base + w] == block)
    }

    /// Miss ratio so far.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Hierarchy latencies beyond the per-level hit latencies.
#[derive(Clone, Copy, Debug)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory access latency (L2 miss penalty).
    pub mem_latency: u32,
    /// Extra cycles for the second chunk of an L2 line.
    pub l2_interchunk: u32,
    /// One-way cluster ↔ D-cache transfer latency (§3.3: 1 cycle each way).
    pub dcache_transfer: u32,
    /// D-cache read/write ports per cycle.
    pub dcache_ports: u32,
}

impl Default for MemConfig {
    /// Table 2 values.
    fn default() -> Self {
        MemConfig {
            l1i: CacheConfig {
                size: 64 * 1024,
                ways: 2,
                line: 32,
                latency: 1,
            },
            l1d: CacheConfig {
                size: 32 * 1024,
                ways: 4,
                line: 32,
                latency: 2,
            },
            l2: CacheConfig {
                size: 512 * 1024,
                ways: 4,
                line: 64,
                latency: 10,
            },
            mem_latency: 100,
            l2_interchunk: 2,
            dcache_transfer: 1,
            dcache_ports: 4,
        }
    }
}

/// The composed hierarchy. Returns pure latencies; port arbitration is done
/// by the pipeline (it owns the per-cycle port budget).
pub struct MemHierarchy {
    /// Config (public for reports).
    pub cfg: MemConfig,
    /// L1 instruction cache.
    pub l1i: SetAssocCache,
    /// L1 data cache.
    pub l1d: SetAssocCache,
    /// Unified L2.
    pub l2: SetAssocCache,
}

impl MemHierarchy {
    /// Build from config.
    pub fn new(cfg: MemConfig) -> Self {
        MemHierarchy {
            l1i: SetAssocCache::new(cfg.l1i),
            l1d: SetAssocCache::new(cfg.l1d),
            l2: SetAssocCache::new(cfg.l2),
            cfg,
        }
    }

    /// Latency of an instruction fetch at `addr` (cache pipeline only; the
    /// fetch unit accounts for the 1-cycle L1I hit as its base cycle).
    pub fn access_inst(&mut self, addr: u64) -> u32 {
        if self.l1i.access(addr) {
            self.cfg.l1i.latency
        } else if self.l2.access(addr) {
            self.cfg.l1i.latency + self.cfg.l2.latency + self.interchunk(addr)
        } else {
            self.cfg.l1i.latency + self.cfg.l2.latency + self.cfg.mem_latency
        }
    }

    /// Latency of a data access at `addr` **excluding** the ±1 cycle
    /// cluster↔cache transfers, which the pipeline adds explicitly.
    pub fn access_data(&mut self, addr: u64) -> u32 {
        if self.l1d.access(addr) {
            self.cfg.l1d.latency
        } else if self.l2.access(addr) {
            self.cfg.l1d.latency + self.cfg.l2.latency + self.interchunk(addr)
        } else {
            self.cfg.l1d.latency + self.cfg.l2.latency + self.cfg.mem_latency
        }
    }

    /// The second 32B chunk of a 64B L2 line costs extra.
    fn interchunk(&self, addr: u64) -> u32 {
        let within = addr & (self.cfg.l2.line as u64 - 1);
        if within >= (self.cfg.l2.line as u64) / 2 {
            self.cfg.l2_interchunk
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 32B lines = 256B
        SetAssocCache::new(CacheConfig {
            size: 256,
            ways: 2,
            line: 32,
            latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same line
        assert!(!c.access(32)); // next line
        assert_eq!(c.misses, 2);
        assert_eq!(c.accesses, 4);
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        // Set stride = 4 sets * 32B = 128B. These three map to set 0.
        c.access(0);
        c.access(128);
        c.access(0); // make 128 the LRU
        c.access(256); // evicts 128
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn sets_computed() {
        let cfg = CacheConfig {
            size: 32 * 1024,
            ways: 4,
            line: 32,
            latency: 2,
        };
        assert_eq!(cfg.sets(), 256);
    }

    #[test]
    fn table2_hierarchy_latencies() {
        let mut m = MemHierarchy::new(MemConfig::default());
        // Cold: miss everywhere -> 2 + 10 + 100
        assert_eq!(m.access_data(0x4000), 112);
        // Now in both L1D and L2: hit -> 2
        assert_eq!(m.access_data(0x4000), 2);
        // Evict nothing; a different line in the same L2 line's upper chunk:
        // first access cold in L1 but hits L2 (filled by the first miss),
        // upper 32B chunk pays interchunk: 2 + 10 + 2
        assert_eq!(m.access_data(0x4020), 14);
    }

    #[test]
    fn icache_latencies() {
        let mut m = MemHierarchy::new(MemConfig::default());
        assert_eq!(m.access_inst(0x100), 111); // 1 + 10 + 100
        assert_eq!(m.access_inst(0x100), 1);
        assert_eq!(m.access_inst(0x120), 13); // L2 hit, upper chunk: 1+10+2
    }

    #[test]
    fn miss_rate_reporting() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(64);
        c.access(64);
        assert!((c.miss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn streaming_evicts_reference_model() {
        // Stream through 2x the cache size; re-touch start: everything
        // evicted (LRU with a working set 2x capacity).
        let mut c = tiny();
        for line in 0..16u64 {
            c.access(line * 32);
        }
        assert!(!c.probe(0));
        assert!(c.probe(15 * 32));
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = tiny();
        c.access(0);
        let before = (c.accesses, c.misses);
        assert!(c.probe(0));
        assert!(!c.probe(999 * 32));
        assert_eq!((c.accesses, c.misses), before);
    }
}
