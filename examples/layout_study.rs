//! Layout study (§3.2): block areas, module floorplans, die placement, and
//! how wire lengths scale with the register file — the feasibility argument
//! for the ring bypass.
//!
//! ```text
//! cargo run --release --example layout_study
//! ```

use ring_clustered::layout::floorplan::{
    max_wire_fp, max_wire_int, module_floorplan, split_ring_floorplan, ModuleKind,
};
use ring_clustered::layout::{ring_placement, AreaModel, Component};

fn main() {
    let model = AreaModel::default();

    println!("Table 1 — block areas (λ², 8-cluster configuration)");
    for b in model.table1() {
        println!(
            "  {:22} {:>13.0} λ²   {:>8.0} x {:>8.0} λ",
            b.component.name(),
            b.area,
            b.height,
            b.width
        );
    }
    println!("  cluster total       {:>13.0} λ²\n", model.cluster_area());

    println!("Figure 3 — ring placements");
    for n in [4usize, 8] {
        let p = ring_placement(n);
        let (s, c) = p.module_counts();
        let adjacent = (0..n).all(|i| p.neighbor_distance(i) == 1);
        println!(
            "  {n} clusters: {s} straight + {c} corner modules; neighbours adjacent: {adjacent}"
        );
    }
    println!();

    println!("Figures 4-5 — maximum inter-cluster wire lengths (model vs paper)");
    let s = module_floorplan(&model, ModuleKind::Straight);
    let c = module_floorplan(&model, ModuleKind::Corner);
    let si = split_ring_floorplan(&model, ModuleKind::Straight, false);
    let sf = split_ring_floorplan(&model, ModuleKind::Straight, true);
    println!(
        "  unified, int  straight->straight : {:>7.0} λ (paper ≈ 17,400)",
        max_wire_int(&s, &s)
    );
    println!(
        "  unified, fp   straight->corner   : {:>7.0} λ (paper ≈ 23,300)",
        max_wire_fp(&s, &c)
    );
    println!(
        "  split rings,  int                 : {:>7.0} λ (paper ≈ 11,200)",
        max_wire_int(&si, &si)
    );
    println!(
        "  split rings,  fp                  : {:>7.0} λ (paper ≈ 11,200)",
        max_wire_fp(&sf, &sf)
    );
    println!();

    println!("Sensitivity — wire length vs register file size (unified int path)");
    for regs in [32usize, 48, 64, 96, 128] {
        let m = AreaModel {
            regs,
            ..AreaModel::default()
        };
        let fpn = module_floorplan(&m, ModuleKind::Straight);
        let rf = m.block(Component::RegisterFile);
        println!(
            "  {regs:>3} regs/cluster: RF {:>6.0} λ wide -> max int wire {:>7.0} λ",
            rf.width,
            max_wire_int(&fpn, &fpn)
        );
    }
    println!("\nConclusion (§3.2): next-cluster bypass wires are comparable to");
    println!("intra-cluster bypasses of a conventional clustered design.");
}
