//! Regenerate every table and figure of the paper in one go.
//!
//! ```text
//! RCMC_INSTRS=200000 cargo run --release --example paper_figures
//! ```
//!
//! Results are memoized in `target/rcmc-results/`, shared with the
//! per-figure `cargo bench` targets, so this never simulates a
//! (configuration × benchmark) pair twice.

use ring_clustered::sim::experiments;
use ring_clustered::sim::runner::{Budget, ResultStore};

fn main() {
    let budget = Budget::default();
    let store = ResultStore::open_default();
    println!(
        "RCMC paper reproduction — window: {} warm-up + {} measured instructions",
        budget.warmup, budget.measure
    );
    println!("(set RCMC_INSTRS / RCMC_WARMUP to change; results are cached per window)\n");
    let t0 = std::time::Instant::now();
    for ex in experiments::run_all(&budget, &store) {
        println!("================================================================");
        println!("{}", ex.text);
    }
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
