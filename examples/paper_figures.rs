//! Regenerate every table and figure of the paper in one go.
//!
//! ```text
//! RCMC_INSTRS=200000 RCMC_JOBS=8 cargo run --release --example paper_figures
//! ```
//!
//! All thirteen figures are plan values behind one union sweep
//! (`experiments::plans::everything()`); the session memoizes every
//! (configuration × benchmark) pair in `target/rcmc-results/`, shared with
//! the per-figure `cargo bench` targets, so this never simulates a pair
//! twice. The sweep fans out over the session's pool (`RCMC_JOBS`, default:
//! all cores); the figures are bit-identical at any worker count.

use ring_clustered::sim::experiments;
use ring_clustered::sim::runner::Budget;
use ring_clustered::sim::{Progress, Session};

fn main() {
    let budget = Budget::default();
    let session = Session::new().with_progress(Progress::Stderr);
    println!(
        "RCMC paper reproduction — window: {} warm-up + {} measured instructions, {} jobs",
        budget.warmup,
        budget.measure,
        session.jobs()
    );
    println!(
        "(set RCMC_INSTRS / RCMC_WARMUP / RCMC_JOBS to change; results are cached per window)\n"
    );
    let t0 = std::time::Instant::now();
    for ex in experiments::run_all(&session).expect("paper plans must validate") {
        println!("================================================================");
        println!("{}", ex.text);
    }
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
