//! Regenerate every table and figure of the paper in one go.
//!
//! ```text
//! RCMC_INSTRS=200000 RCMC_JOBS=8 cargo run --release --example paper_figures
//! ```
//!
//! Results are memoized in `target/rcmc-results/`, shared with the
//! per-figure `cargo bench` targets, so this never simulates a
//! (configuration × benchmark) pair twice. The three sweeps fan out over a
//! thread pool (`RCMC_JOBS`, default: all cores); the figures are
//! bit-identical at any worker count.

use ring_clustered::sim::experiments;
use ring_clustered::sim::runner::{default_jobs, Budget, ResultStore, SweepOpts, SweepProgress};

fn progress(p: &SweepProgress<'_>) {
    p.eprint_status();
}

fn main() {
    let budget = Budget::default();
    let store = ResultStore::open_default();
    let opts = SweepOpts {
        jobs: default_jobs(),
        on_progress: Some(&progress),
    };
    println!(
        "RCMC paper reproduction — window: {} warm-up + {} measured instructions, {} jobs",
        budget.warmup, budget.measure, opts.jobs
    );
    println!(
        "(set RCMC_INSTRS / RCMC_WARMUP / RCMC_JOBS to change; results are cached per window)\n"
    );
    let t0 = std::time::Instant::now();
    for ex in experiments::run_all(&budget, &store, &opts) {
        println!("================================================================");
        println!("{}", ex.text);
    }
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
