//! Quickstart: assemble a small program, run it on both the ring and the
//! conventional clustered cores, and compare what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ring_clustered::asm::parse;
use ring_clustered::core::{Core, CoreConfig, Steering, Topology};
use ring_clustered::emu::trace_program;
use ring_clustered::uarch::{MemConfig, PredictorConfig};

fn main() {
    // A little dot-product-style loop in the RCMC mini-ISA.
    let source = r#"
        .data
        x: .f64 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        y: .f64 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0
        .text
        main:
            movi r1, 2000        ; outer repetitions (warms the caches)
        outer:
            movi r2, x
            movi r3, y
            movi r4, 8           ; elements
        loop:
            fld  f1, 0(r2)
            fld  f2, 0(r3)
            fmul f3, f1, f2
            fadd f4, f4, f3      ; running dot product
            addi r2, r2, 8
            addi r3, r3, 8
            addi r4, r4, -1
            bne  r4, r0, loop
            addi r1, r1, -1
            bne  r1, r0, outer
            halt
    "#;
    let program = parse(source).expect("assembly failed");
    println!("static program: {} instructions", program.insns.len());

    // Functional execution produces the oracle trace the timing cores replay.
    let trace = trace_program(&program, 200_000).expect("emulation failed");
    println!(
        "dynamic trace:  {} instructions (halted: {})\n",
        trace.insns.len(),
        trace.halted
    );

    for (label, topology, steering) in [
        ("Ring (paper §3)", Topology::Ring, Steering::RingDep),
        ("Conv (baseline §4.1)", Topology::Conv, Steering::ConvDcount),
    ] {
        let cfg = CoreConfig {
            topology,
            steering,
            ..CoreConfig::default()
        };
        let mut core = Core::new(
            cfg,
            MemConfig::default(),
            PredictorConfig::default(),
            &trace.insns,
        );
        let stats = core.run(u64::MAX);
        println!(
            "{label:22} IPC {:.3}  comms/insn {:.3}  mean hops {:.2}  bus wait {:.2}  NREADY {:.2}",
            stats.ipc(),
            stats.comms_per_insn(),
            stats.dist_per_comm(),
            stats.wait_per_comm(),
            stats.nready_per_cycle(),
        );
        let shares: Vec<String> = stats
            .dispatch_shares(8)
            .iter()
            .map(|s| format!("{:4.1}%", s * 100.0))
            .collect();
        println!("{:22} per-cluster dispatch: [{}]\n", "", shares.join(" "));
    }
    println!("Note how the ring spreads dispatch almost perfectly evenly —");
    println!("the paper's 'inherent workload balance' — without a balance knob.");
}
