//! Steering laboratory: watch the three steering algorithms place the
//! paper's Figure 2 example, instruction by instruction, then run a custom
//! workload under all three.
//!
//! ```text
//! cargo run --release --example steering_lab [benchmark]
//! ```

use ring_clustered::core::config::DistanceLut;
use ring_clustered::core::steering::{RingDep, SteerCtx, SteeringPolicy};
use ring_clustered::core::value::ValueTable;
use ring_clustered::core::{CoreConfig, Steering, Topology};
use ring_clustered::sim::{config, runner, Session};

fn figure2_walkthrough() {
    println!("--- Figure 2 walkthrough (ring, 4 clusters) ---");
    let cfg = CoreConfig {
        n_clusters: 4,
        topology: Topology::Ring,
        steering: Steering::RingDep,
        regs_int: 64,
        regs_fp: 64,
        ..CoreConfig::default()
    };
    let mut values = ValueTable::new(4, 64, 64);
    let dist = DistanceLut::new(&cfg);
    let mut policy = RingDep::new();
    let steer = |policy: &mut RingDep, values: &ValueTable, srcs: &[u32]| {
        policy.steer(&SteerCtx {
            cfg: &cfg,
            dist: &dist,
            values,
            srcs,
        })
    };

    // I1. R1 = 1
    let s1 = steer(&mut policy, &values, &[]);
    let r1 = values.alloc(cfg.dest_cluster(s1.cluster), false);
    values.mark_ready(r1, cfg.dest_cluster(s1.cluster));
    println!(
        "I1. R1 = 1       -> cluster {} (R1 lands in {})",
        s1.cluster,
        cfg.dest_cluster(s1.cluster)
    );

    // I2. R2 = R1 + 1
    let s2 = steer(&mut policy, &values, &[r1]);
    let r2 = values.alloc(cfg.dest_cluster(s2.cluster), false);
    values.mark_ready(r2, cfg.dest_cluster(s2.cluster));
    println!(
        "I2. R2 = R1 + 1  -> cluster {} ({} comms)",
        s2.cluster,
        s2.comms.len()
    );

    // I3. R3 = R1 + R2
    let s3 = steer(&mut policy, &values, &[r1, r2]);
    for cm in &s3.comms {
        values.add_copy(cm.value, s3.cluster);
        values.mark_ready(cm.value, s3.cluster);
    }
    let r3 = values.alloc(cfg.dest_cluster(s3.cluster), false);
    values.mark_ready(r3, cfg.dest_cluster(s3.cluster));
    println!(
        "I3. R3 = R1 + R2 -> cluster {} ({} comm)",
        s3.cluster,
        s3.comms.len()
    );

    // I4. R4 = R1 + R3
    let s4 = steer(&mut policy, &values, &[r1, r3]);
    for cm in &s4.comms {
        values.add_copy(cm.value, s4.cluster);
        values.mark_ready(cm.value, s4.cluster);
    }
    let _r4 = values.alloc(cfg.dest_cluster(s4.cluster), false);
    println!(
        "I4. R4 = R1 + R3 -> cluster {} ({} comm)",
        s4.cluster,
        s4.comms.len()
    );

    // I5. R5 = R1 x 3
    let s5 = steer(&mut policy, &values, &[r1]);
    println!(
        "I5. R5 = R1 x 3  -> cluster {} (most free registers downstream)",
        s5.cluster
    );
    println!("(matches the paper's Figure 2: 0, 1, 2, 3, 3)\n");
}

fn main() {
    figure2_walkthrough();

    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "galgel".to_string());
    println!("--- '{bench}' across the (policy x fabric) cross (8 clusters, 1 bus, 2IW) ---");
    let budget = runner::Budget {
        warmup: 10_000,
        measure: 60_000,
    };
    // One session = the shared memoized store + the warm trace cache; every
    // (policy × fabric) cell after the first reuses the emulated trace.
    let session = Session::new();
    for topology in config::ALL_TOPOLOGIES {
        for steering in config::ALL_STEERINGS {
            let cfg = config::make_pair(topology, steering, 8, 2, 1);
            let label = format!(
                "{} + {}",
                config::topology_name(topology),
                config::steering_name(steering)
            );
            let r = session.run_one(&cfg, &bench, &budget);
            let max_share = r.dispatch_shares.iter().copied().fold(0.0f64, f64::max);
            println!(
                "{label:14} IPC {:.3}  comms/insn {:.3}  NREADY {:.2}  max cluster share {:.1}%",
                r.ipc,
                r.comms_per_insn,
                r.nready,
                max_share * 100.0
            );
        }
        println!();
    }
    println!("Conv+SSA concentrates; Ring+SSA still balances — §4.7's headline.");
    println!("Any policy drives any fabric: that's the SteeringPolicy layer.");
}
