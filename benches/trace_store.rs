//! trace_store — cold vs warm full-suite trace materialization.
//!
//! Measures the win the on-disk [`TraceDb`] exists for: materializing the
//! oracle traces of the whole 26-benchmark suite into a **fresh** store
//! (cold: emulate + persist) and then again through a fresh in-memory
//! cache over the now-populated store (warm: decode only). Asserts the
//! cache counters prove what happened (cold: 26 built / 0 hits; warm:
//! 0 built / 26 hits) and that every decoded trace — dynamic instructions
//! *and* whole-run facts — is bit-identical to a fresh emulation.
//!
//! Cold is timed once (it is a once-per-store event by design); warm is
//! the median of `RCMC_TRACE_BENCH_REPS` passes (default 5). Emits
//! `BENCH_trace.json` at the repo root (atomic rename, like the other
//! BENCH files) with `cold_s`, `warm_s`, `warm_speedup`, `decode_MBps`,
//! and the on-disk `bytes_per_insn` next to the flat v1 figure the format
//! v2 zero-run codec replaces.
//! Knobs: `RCMC_TRACE_BENCH_INSTRS` (measure half of the budget; default
//! 30000), `RCMC_TRACE_BENCH_REPS`.

use std::path::{Path, PathBuf};
use std::time::Instant;

use ring_clustered::emu::{trace_program, TraceCache, TraceDb};
use ring_clustered::sim::runner::{all_bench_names, Budget};
use ring_clustered::workloads::benchmark;
use serde::json::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Materialize every suite trace through `cache` (disk fallthrough via
/// `db`), returning elapsed seconds.
fn materialize(cache: &TraceCache, db: &TraceDb, names: &[&str], len: u64) -> f64 {
    let t0 = Instant::now();
    for name in names {
        let b = benchmark(name).expect("suite benchmark");
        let trace = cache.get_or_build_via(name, len, Some(db), || {
            trace_program(&b.build(), len as usize).expect("suite benchmarks emulate cleanly")
        });
        assert!(!trace.is_empty(), "{name}: empty trace");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let measure: u64 = std::env::var("RCMC_TRACE_BENCH_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30_000);
    let budget = Budget {
        warmup: 3_000,
        measure,
    };
    let len = budget.trace_len();
    let names = all_bench_names();
    let dir: PathBuf =
        std::env::temp_dir().join(format!("rcmc-trace-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = TraceDb::at(dir.clone());

    // Warmup pass: emulate everything once and throw it away, so the timed
    // passes measure emulate-vs-decode work, not one-time process costs
    // (lazy relocation, allocator growth, first-touch page faults).
    {
        let warmup: Vec<_> = names
            .iter()
            .map(|n| trace_program(&benchmark(n).unwrap().build(), len as usize).unwrap())
            .collect();
        drop(warmup);
    }

    // Cold is timed ONCE, against an empty store. Cold materialization is
    // a once-per-store event by design — the entire point of the trace DB
    // is that nobody ever pays it twice — so its honest cost is the one-
    // shot cost, first-time page-cache/writeback pressure from persisting
    // the store included. Looping cold and taking a median would measure
    // a loop-steady state that no real cold start ever runs in (each
    // iteration pre-pays the next one's kernel-side costs).
    let _ = std::fs::remove_dir_all(&dir);
    let cold_cache = TraceCache::new();
    let cold_s = materialize(&cold_cache, &db, &names, len);
    let cs = cold_cache.stats();
    assert_eq!(
        (cs.built, cs.db_hits),
        (names.len() as u64, 0),
        "cold pass must emulate everything"
    );
    // A real warm start is a new process, not one already holding every
    // trace in memory — drop the cold cache before timing warm.
    drop(cold_cache);

    // Warm, by contrast, is the many-shot path (every run after the
    // first), so it is timed `reps` times through a fresh cache each time
    // and reported as the median.
    let reps: usize = std::env::var("RCMC_TRACE_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let mut warm_times = Vec::new();
    let mut last_warm = None;
    for _ in 0..reps {
        let warm_cache = TraceCache::new();
        warm_times.push(materialize(&warm_cache, &db, &names, len));
        let ws = warm_cache.stats();
        assert_eq!(
            (ws.built, ws.db_hits),
            (0, names.len() as u64),
            "warm pass must load everything from the trace store"
        );
        last_warm = Some(warm_cache);
    }
    let warm_cache = last_warm.expect("at least one rep");
    let fmt = |xs: &[f64]| {
        xs.iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("  cold {cold_s:.3}  warm reps [{}]", fmt(&warm_times));
    warm_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let warm_s = warm_times[warm_times.len() / 2];

    // Bit-identity: stored == freshly emulated, whole-run facts included.
    let mut bytes_total = 0u64;
    let mut insns_total = 0u64;
    for name in &names {
        let b = benchmark(name).unwrap();
        let fresh = trace_program(&b.build(), len as usize).unwrap();
        let stored = db.load_full(name, len).expect("stored trace validates");
        assert_eq!(stored.insns, fresh.insns, "{name}: dynamic stream differs");
        assert_eq!(stored.halted, fresh.halted, "{name}: halted flag differs");
        assert_eq!(
            stored.static_insns, fresh.static_insns,
            "{name}: static count differs"
        );
        let in_mem = warm_cache.get_or_build_via(name, len, Some(&db), || {
            panic!("{name}: warm cache lost its entry")
        });
        assert_eq!(*in_mem, fresh.insns, "{name}: cached stream differs");
    }
    for m in db.list() {
        bytes_total += m.bytes;
        insns_total += m.insns;
    }
    let _ = std::fs::remove_dir_all(&dir);

    let warm_speedup = cold_s / warm_s;
    let decode_mbps = bytes_total as f64 / warm_s / 1e6;
    // Zero-run compression win: format v1 stored every record as four flat
    // words (32 B/insn, no header amortization worth counting); v2 stores
    // only the nonzero words behind a control byte.
    let bytes_per_insn_flat = 32.0;
    let bytes_per_insn = bytes_total as f64 / insns_total as f64;
    println!(
        "trace_store: {} traces, {:.1} MB on disk",
        names.len(),
        bytes_total as f64 / 1e6
    );
    println!("  cold {cold_s:.3}s  warm {warm_s:.3}s  speedup {warm_speedup:.1}x  decode {decode_mbps:.0} MB/s");
    println!(
        "  {bytes_per_insn:.2} B/insn on disk (flat v1 encoding: {bytes_per_insn_flat:.0} B/insn)"
    );
    assert!(
        bytes_per_insn < bytes_per_insn_flat,
        "v2 zero-run codec did not beat the flat v1 record size"
    );

    let bench = obj(vec![
        (
            "_meta",
            obj(vec![
                ("bench", Value::Str("trace_store".into())),
                ("traces", Value::Num(names.len() as f64)),
                ("trace_len", Value::Num(len as f64)),
                ("bytes", Value::Num(bytes_total as f64)),
            ]),
        ),
        ("cold_s", Value::Num(cold_s)),
        ("warm_s", Value::Num(warm_s)),
        ("warm_speedup", Value::Num(warm_speedup)),
        ("decode_MBps", Value::Num(decode_mbps)),
        ("bytes_per_insn_flat", Value::Num(bytes_per_insn_flat)),
        ("bytes_per_insn", Value::Num(bytes_per_insn)),
    ]);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_trace.json");
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, format!("{}\n", bench.to_pretty_string())).expect("write BENCH_trace");
    std::fs::rename(&tmp, &path).expect("rename BENCH_trace");
    println!("wrote {}", path.display());
}
