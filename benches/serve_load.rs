//! serve_load — load-generator benchmark for the concurrent `rcmc serve`.
//!
//! Spawns a real `rcmc serve` child on a **fresh** result store (so the
//! coalescing numbers are not polluted by warm memoization) and drives it
//! over pipes with scripted clients, in two phases:
//!
//! * **herd** — N clients submit the *same* plan at once (the thundering
//!   herd the scheduler's job coalescing exists for). Asserts the hard
//!   invariants from the scheduler contract: total simulations executed
//!   equals the solo-run job count, the coalescing hit rate is ≥ 0.8 for
//!   N = 8, and every client's rows are bit-identical.
//! * **mixed** — closed-loop clients replay a rotating mix of
//!   `examples/specs/` plans (each sends its next request when its result
//!   arrives), measuring end-to-end request latency and throughput.
//!
//! Emits `BENCH_serve.json` at the repo root (atomic rename, like the
//! other BENCH files) with top-level `requests_per_s`, `p50_ms`, `p99_ms`
//! and `coalesce_hit_rate`, plus per-phase sections. Knobs:
//! `RCMC_SERVE_CLIENTS` (default 8) and `RCMC_SERVE_ROUNDS` (default 3).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::Instant;

use serde::json::Value;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// One `rcmc serve` child and its pipes.
struct Serve {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Serve {
    fn spawn(store: &Path) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rcmc"))
            .args(["serve", "--store"])
            .arg(store)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("failed to spawn rcmc serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Serve {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("serve child closed stdin");
        self.stdin.flush().expect("serve child closed stdin");
    }

    /// Next response event; errors from the service fail the bench loudly.
    fn next_event(&mut self) -> Value {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("read from serve");
        assert!(n > 0, "serve child closed stdout unexpectedly");
        let v = serde::json::parse(line.trim()).expect("serve output must be JSON");
        if v.get("event") == Some(&Value::Str("error".into())) {
            panic!("serve error event: {line}");
        }
        v
    }

    /// Read events until `count` results arrive, recording each result's
    /// id and arrival time. Returns (id → (arrival, rows)) in event order.
    fn collect_results(&mut self, count: usize) -> Vec<(String, Instant, Value)> {
        let mut out = Vec::new();
        while out.len() < count {
            let ev = self.next_event();
            if ev.get("event") == Some(&Value::Str("result".into())) {
                let Some(Value::Str(id)) = ev.get("id") else {
                    panic!("result without string id: {ev:?}");
                };
                let rows = ev.get("rows").expect("result has rows").clone();
                out.push((id.clone(), Instant::now(), rows));
            }
        }
        out
    }

    /// The scheduler's lifetime counters via the `stats` op.
    fn stats(&mut self) -> HashMap<String, f64> {
        self.send(r#"{"id": "stats", "op": "stats"}"#);
        loop {
            let ev = self.next_event();
            if ev.get("event") == Some(&Value::Str("stats".into())) {
                let Some(Value::Obj(fields)) = ev.get("scheduler") else {
                    panic!("stats without scheduler object: {ev:?}");
                };
                return fields
                    .iter()
                    .filter_map(|(k, v)| match v {
                        Value::Num(n) => Some((k.clone(), *n)),
                        _ => None,
                    })
                    .collect();
            }
        }
    }

    fn shutdown(mut self) {
        self.send(r#"{"op": "shutdown"}"#);
        let status = self.child.wait().expect("wait for serve child");
        assert!(status.success(), "rcmc serve exited with {status}");
    }
}

/// Nearest-rank percentile of unsorted latencies, in milliseconds.
fn percentile_ms(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The herd plan: 2 configs × 2 benches = 4 jobs solo.
const HERD_PLAN: &str = r#"{"name": "herd", "configs": [{"topology": "ring", "clusters": 4}, {"topology": "conv", "clusters": 4}], "benches": ["swim", "gzip"], "budget": {"warmup": 500, "measure": 2000}}"#;
const HERD_SOLO_JOBS: f64 = 4.0;

fn run_herd(serve: &mut Serve, clients: usize) -> Value {
    let started = Instant::now();
    let sent = Instant::now();
    for c in 0..clients {
        serve.send(&format!(
            r#"{{"id": "h{c}", "op": "run", "plan": {HERD_PLAN}}}"#
        ));
    }
    let results = serve.collect_results(clients);
    let wall_s = started.elapsed().as_secs_f64();
    // Every client must see bit-identical rows.
    for (id, _, rows) in &results[1..] {
        assert_eq!(
            rows, &results[0].2,
            "herd client {id} got different rows than h0"
        );
    }
    let stats = serve.stats();
    let executed = stats["executed"];
    let submitted = stats["submitted"];
    let hit_rate = (stats["coalesced"] + stats["memoized"]) / submitted;
    // The coalescing contract, enforced here so CI fails if it regresses.
    assert_eq!(
        executed, HERD_SOLO_JOBS,
        "herd of {clients} must cost exactly the solo job count"
    );
    assert_eq!(submitted, HERD_SOLO_JOBS * clients as f64);
    if clients >= 5 {
        assert!(
            hit_rate >= 0.8,
            "herd coalesce hit rate {hit_rate:.3} below 0.8"
        );
    }
    let mut lat: Vec<f64> = results
        .iter()
        .map(|(_, at, _)| at.duration_since(sent).as_secs_f64() * 1e3)
        .collect();
    println!(
        "herd: {clients} clients, executed {executed}, hit rate {hit_rate:.3}, \
         p50 {:.1} ms, p99 {:.1} ms",
        percentile_ms(&mut lat, 0.50),
        percentile_ms(&mut lat, 0.99),
    );
    obj(vec![
        ("clients", Value::Num(clients as f64)),
        ("jobs_solo", Value::Num(HERD_SOLO_JOBS)),
        ("executed", Value::Num(executed)),
        ("submitted", Value::Num(submitted)),
        ("coalesce_hit_rate", Value::Num(hit_rate)),
        ("requests_per_s", Value::Num(clients as f64 / wall_s)),
        ("p50_ms", Value::Num(percentile_ms(&mut lat, 0.50))),
        ("p99_ms", Value::Num(percentile_ms(&mut lat, 0.99))),
    ])
}

/// Load the rotating plan mix: the committed example specs, inlined into
/// run requests.
fn mixed_plans() -> Vec<String> {
    let specs = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/specs");
    ["serve_mixed.json", "plan_smoke.json"]
        .iter()
        .map(|name| {
            let text = std::fs::read_to_string(specs.join(name))
                .unwrap_or_else(|e| panic!("read {name}: {e}"));
            serde::json::parse(&text)
                .unwrap_or_else(|| panic!("{name} is not valid JSON"))
                .to_compact_string()
        })
        .collect()
}

fn run_mixed(
    serve: &mut Serve,
    clients: usize,
    rounds: usize,
    herd: &HashMap<String, f64>,
) -> Value {
    let plans = mixed_plans();
    let req = |c: usize, r: usize| {
        format!(
            r#"{{"id": "m{c}-{r}", "op": "run", "plan": {}}}"#,
            plans[(c + r) % plans.len()]
        )
    };
    let total = clients * rounds;
    let started = Instant::now();
    // Closed loop: every client has one request in flight; its result
    // triggers the next round. Send times are tracked per request id.
    let mut sent_at: HashMap<String, Instant> = HashMap::new();
    let mut next_round: HashMap<usize, usize> = HashMap::new();
    for c in 0..clients {
        sent_at.insert(format!("m{c}-0"), Instant::now());
        next_round.insert(c, 1);
        serve.send(&req(c, 0));
    }
    let mut lat: Vec<f64> = Vec::with_capacity(total);
    while lat.len() < total {
        let (id, at, _) = serve.collect_results(1).pop().unwrap();
        lat.push(at.duration_since(sent_at[&id]).as_secs_f64() * 1e3);
        let client: usize = id[1..id.find('-').unwrap()].parse().unwrap();
        let round = next_round[&client];
        if round < rounds {
            next_round.insert(client, round + 1);
            sent_at.insert(format!("m{client}-{round}"), Instant::now());
            serve.send(&req(client, round));
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    // Phase-local coalescing: delta against the post-herd snapshot.
    let stats = serve.stats();
    let submitted = stats["submitted"] - herd["submitted"];
    let hits = (stats["coalesced"] + stats["memoized"]) - (herd["coalesced"] + herd["memoized"]);
    let hit_rate = if submitted > 0.0 {
        hits / submitted
    } else {
        0.0
    };
    println!(
        "mixed: {clients} clients × {rounds} rounds, {:.1} req/s, \
         p50 {:.1} ms, p99 {:.1} ms, hit rate {hit_rate:.3}",
        total as f64 / wall_s,
        percentile_ms(&mut lat, 0.50),
        percentile_ms(&mut lat, 0.99),
    );
    obj(vec![
        ("clients", Value::Num(clients as f64)),
        ("rounds", Value::Num(rounds as f64)),
        ("requests", Value::Num(total as f64)),
        ("requests_per_s", Value::Num(total as f64 / wall_s)),
        ("p50_ms", Value::Num(percentile_ms(&mut lat, 0.50))),
        ("p99_ms", Value::Num(percentile_ms(&mut lat, 0.99))),
        ("coalesce_hit_rate", Value::Num(hit_rate)),
    ])
}

fn main() {
    let clients = env_usize("RCMC_SERVE_CLIENTS", 8);
    let rounds = env_usize("RCMC_SERVE_ROUNDS", 3);
    let store: PathBuf =
        std::env::temp_dir().join(format!("rcmc-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    let mut serve = Serve::spawn(&store);
    let herd = run_herd(&mut serve, clients);
    let herd_stats = serve.stats();
    let mixed = run_mixed(&mut serve, clients, rounds, &herd_stats);
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&store);

    // Top level mirrors the mixed (steady-state) latency/throughput and
    // the herd's coalescing rate — the acceptance metrics.
    let get = |section: &Value, key: &str| section.get(key).unwrap().clone();
    let bench = obj(vec![
        (
            "_meta",
            obj(vec![
                ("bench", Value::Str("serve_load".into())),
                ("clients", Value::Num(clients as f64)),
                ("rounds", Value::Num(rounds as f64)),
            ]),
        ),
        ("requests_per_s", get(&mixed, "requests_per_s")),
        ("p50_ms", get(&mixed, "p50_ms")),
        ("p99_ms", get(&mixed, "p99_ms")),
        ("coalesce_hit_rate", get(&herd, "coalesce_hit_rate")),
        ("herd", herd),
        ("mixed", mixed),
    ]);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, format!("{}\n", bench.to_pretty_string())).expect("write BENCH_serve");
    std::fs::rename(&tmp, &path).expect("rename BENCH_serve");
    println!("wrote {}", path.display());
}
