//! Minimal stand-in for `rayon`, backed by `std::thread`.
//!
//! The build environment has no access to crates.io, so the workspace patches
//! `rayon` to this crate (see the root manifest). It is deliberately *not* a
//! work-stealing scheduler: a [`ThreadPool`] is a worker count, and each
//! `scope`/`for_each`/`map` call runs its jobs on that many scoped
//! `std::thread` workers pulling from one shared queue (or a shared index
//! counter for the slice operations). That is exactly enough for the
//! simulator's embarrassingly parallel sweeps, keeps panics propagating like
//! `std::thread::scope` does, and needs no `unsafe`.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Number of workers the default pool (and `num_threads(0)`) uses: the
/// machine's available parallelism, or 1 when that cannot be determined.
pub fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Fixed-size thread pool. The worker count is fixed at construction; the
/// worker threads themselves are scoped to each operation, so an idle pool
/// holds no OS resources.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Builder matching `rayon::ThreadPoolBuilder`'s shape.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced by
/// the stand-in, but kept so call sites match the real crate.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start a builder (0 threads = use [`default_num_threads`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count; 0 means [`default_num_threads`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool (infallible in the stand-in).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool::new(self.num_threads))
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new(default_num_threads())
    }
}

/// Lock without poisoning semantics (a panicked worker must not wedge the
/// rest of the pool).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

struct ScopeState<'env> {
    queue: VecDeque<Job<'env>>,
    running: usize,
    closed: bool,
}

struct Shared<'env> {
    state: Mutex<ScopeState<'env>>,
    work: Condvar,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
}

impl<'env> Scope<'_, 'env> {
    /// Queue `f` to run on one of the scope's workers. All spawned jobs are
    /// guaranteed to have finished when `scope` returns.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        let mut st = lock(&self.shared.state);
        st.queue.push_back(Box::new(f));
        drop(st);
        self.shared.work.notify_one();
    }
}

/// Decrements the running count even if the job panics, so sibling workers
/// can still observe completion and exit instead of waiting forever.
struct RunGuard<'a, 'env> {
    shared: &'a Shared<'env>,
}

impl Drop for RunGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        st.running -= 1;
        let idle = st.running == 0 && st.queue.is_empty();
        drop(st);
        if idle {
            self.shared.work.notify_all();
        }
    }
}

/// Marks the scope closed (no more spawns coming) even if the scope closure
/// panics, so workers drain and exit rather than deadlocking the join.
struct CloseGuard<'a, 'env> {
    shared: &'a Shared<'env>,
}

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        lock(&self.shared.state).closed = true;
        self.shared.work.notify_all();
    }
}

fn worker(shared: &Shared<'_>) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.running += 1;
                    break job;
                }
                if st.closed && st.running == 0 {
                    return;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let _guard = RunGuard { shared };
        job();
    }
}

impl ThreadPool {
    /// A pool with `threads` workers; 0 means [`default_num_threads`].
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: if threads == 0 {
                default_num_threads()
            } else {
                threads
            },
        }
    }

    /// Worker count.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with a [`Scope`] whose spawned jobs execute on at most
    /// `num_threads` workers. Returns after every spawned job has finished.
    /// Panics from jobs (or from `op`) propagate to the caller.
    pub fn scope<'env, R, F>(&self, op: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let shared = Shared {
            state: Mutex::new(ScopeState {
                queue: VecDeque::new(),
                running: 0,
                closed: false,
            }),
            work: Condvar::new(),
        };
        std::thread::scope(|ts| {
            for _ in 0..self.threads {
                ts.spawn(|| worker(&shared));
            }
            let _close = CloseGuard { shared: &shared };
            op(&Scope { shared: &shared })
        })
    }

    /// Apply `f` to every item of `items` (with its index) across the pool.
    /// A single-worker pool runs inline on the calling thread, so `jobs = 1`
    /// is a true serial path.
    pub fn for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            for (i, item) in items.iter().enumerate() {
                f(i, item);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        std::thread::scope(|ts| {
            for _ in 0..workers {
                ts.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    f(i, item);
                });
            }
        });
    }

    /// Map every item through `f` across the pool, returning the outputs in
    /// input order regardless of which worker computed them or when.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.for_each(items, |i, item| {
            *lock(&slots[i]) = Some(f(i, item));
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("worker filled every slot")
            })
            .collect()
    }
}

/// [`ThreadPool::scope`] on a default-sized pool, matching `rayon::scope`.
pub fn scope<'env, R, F>(op: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    ThreadPool::default().scope(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_index_once() {
        let items: Vec<usize> = (0..257).collect();
        let hits: Vec<AtomicUsize> = items.iter().map(|_| AtomicUsize::new(0)).collect();
        ThreadPool::new(8).for_each(&items, |i, &v| {
            assert_eq!(i, v);
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = ThreadPool::new(4).map(&items, |_, &v| v * v);
        let expect: Vec<u64> = items.iter().map(|v| v * v).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let caller = std::thread::current().id();
        let inline = AtomicBool::new(true);
        ThreadPool::new(1).for_each(&[1, 2, 3], |_, _| {
            if std::thread::current().id() != caller {
                inline.store(false, Ordering::Relaxed);
            }
        });
        assert!(inline.load(Ordering::Relaxed));
    }

    #[test]
    fn scope_runs_all_spawned_jobs_with_bounded_concurrency() {
        let pool = ThreadPool::new(2);
        let done = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 16);
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn builder_matches_rayon_shape() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.num_threads(), 3);
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.num_threads() >= 1);
    }

    #[test]
    fn scope_returns_op_value() {
        let v = ThreadPool::new(2).scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(v, 42);
    }
}
