//! Minimal stand-in for `criterion`, used because the build environment has
//! no crates.io access (the workspace patches `criterion` to this crate; see
//! the root manifest).
//!
//! It keeps the `criterion_group!`/`criterion_main!`/`Bencher` source shape
//! and actually measures: each benchmark runs for the configured measurement
//! time and reports the median per-iteration wall time (and throughput when
//! one was declared). No statistics machinery, plots or baselines.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup; carried for source compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared work per iteration, used to report a rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// CLI-argument hook; a no-op in the stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let group_cfg = (self.warm_up, self.measurement, self.sample_size);
        run_one(name, group_cfg, None, f);
        self
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            (self.warm_up, self.measurement, self.sample_size),
            self.throughput,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    (warm_up, measurement, sample_size): (Duration, Duration, usize),
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up pass: run the body until the warm-up budget elapses.
    let mut b = Bencher {
        mode: Mode::Timed { budget: warm_up },
        per_iter: Vec::new(),
    };
    f(&mut b);

    // Measurement pass.
    let mut b = Bencher {
        mode: Mode::Timed {
            budget: measurement,
        },
        per_iter: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    let mut samples = b.per_iter;
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / (median as f64 / 1e9);
        match t {
            Throughput::Elements(n) => format!("  {:>12.0} elem/s", per_sec(n)),
            Throughput::Bytes(n) => format!("  {:>12.0} B/s", per_sec(n)),
        }
    });
    println!(
        "{name:<40} median {:>12}  ({} samples){}",
        format_ns(median),
        samples.len(),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

enum Mode {
    Timed { budget: Duration },
}

/// Passed to the benchmark closure; collects per-iteration timings.
pub struct Bencher {
    mode: Mode,
    per_iter: Vec<u128>,
}

impl Bencher {
    /// Time `routine` repeatedly until the sample budget elapses.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let Mode::Timed { budget } = self.mode;
        let deadline = Instant::now() + budget;
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.per_iter.push(t0.elapsed().as_nanos().max(1));
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let Mode::Timed { budget } = self.mode;
        let deadline = Instant::now() + budget;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.per_iter.push(t0.elapsed().as_nanos().max(1));
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Build the group-runner function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Build `fn main()` from group runners, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(5)
    }

    #[test]
    fn group_runs_and_samples() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = fast_criterion();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0);
    }
}
