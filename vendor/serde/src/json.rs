//! The JSON tree shared by the `serde` and `serde_json` stand-ins: a value
//! enum, a renderer (compact and pretty) and a recursive-descent parser.

/// One JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out
    }

    /// Render without whitespace.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        let (nl, pad, pad_in) = match indent {
            Some(n) => ("\n", "  ".repeat(n), "  ".repeat(n + 1)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => render_num(*n, out),
            Value::Str(s) => render_str(s, out),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.render(out, indent.map(|n| n + 1));
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    render_str(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent.map(|n| n + 1));
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/inf; degrade to null (readers treat it as a shape
        // mismatch and recompute).
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 prints the shortest string that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. `None` on any syntax error or trailing garbage.
pub fn parse(text: &str) -> Option<Value> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'n' => eat(b, pos, "null").map(|_| Value::Null),
        b't' => eat(b, pos, "true").map(|_| Value::Bool(true)),
        b'f' => eat(b, pos, "false").map(|_| Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match *b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Value::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Value::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                eat(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match *b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Value::Obj(members));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    eat(b, pos, "\"")?;
    let mut s = String::new();
    loop {
        let rest = std::str::from_utf8(&b[*pos..]).ok()?;
        let c = rest.chars().next()?;
        *pos += c.len_utf8();
        match c {
            '"' => return Some(s),
            '\\' => {
                let e = *b.get(*pos)?;
                *pos += 1;
                match e {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(*pos..*pos + 4)?).ok()?;
                        *pos += 4;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => s.push(c),
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<f64> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos]).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty_and_compact() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("swim \"q\"".into())),
            ("ipc".into(), Value::Num(1.2345678901234567)),
            ("cycles".into(), Value::Num(123456789.0)),
            ("fp".into(), Value::Bool(true)),
            (
                "shares".into(),
                Value::Arr(vec![Value::Num(0.25), Value::Num(0.75)]),
            ),
            ("nothing".into(), Value::Null),
        ]);
        assert_eq!(parse(&v.to_pretty_string()).unwrap(), v);
        assert_eq!(parse(&v.to_compact_string()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_none());
        assert!(parse("[1, 2,]").is_none());
        assert!(parse("12 34").is_none());
        assert!(parse("").is_none());
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(parse(r#""aA\n""#).unwrap(), Value::Str("aA\n".into()));
    }
}
