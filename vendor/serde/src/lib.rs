//! Minimal stand-in for `serde`, used because the build environment has no
//! crates.io access (the workspace patches `serde` to this crate; see the
//! root manifest).
//!
//! Instead of the real serde's visitor architecture, this models
//! serialization through a concrete JSON [`json::Value`] tree: `Serialize`
//! lowers to a `Value`, `Deserialize` lifts from one. The in-tree
//! `serde_json` stand-in renders/parses that tree. This is exactly enough for
//! the workspace's use (derived structs of primitives, strings and vectors)
//! while keeping `#[derive(Serialize, Deserialize)]` source-compatible.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Types that can lower themselves to a [`json::Value`].
pub trait Serialize {
    /// Produce the JSON tree for `self`.
    fn to_value(&self) -> json::Value;
}

/// Types that can lift themselves from a [`json::Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a JSON tree; `None` on shape mismatch.
    fn from_value(v: &json::Value) -> Option<Self>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Option<Self> {
                match v {
                    json::Value::Num(n) => Some(*n as $t),
                    _ => None,
                }
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Option<Self> {
        match v {
            json::Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &json::Value) -> Option<Self> {
        match v {
            json::Value::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> json::Value {
        json::Value::Str((*self).to_string())
    }
}

// A `Value` round-trips as itself, so callers can (de)serialize arbitrary
// JSON trees through the generic entry points (as with real serde_json).
impl Serialize for json::Value {
    fn to_value(&self) -> json::Value {
        self.clone()
    }
}

impl Deserialize for json::Value {
    fn from_value(v: &json::Value) -> Option<Self> {
        Some(v.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Option<Self> {
        match v {
            json::Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => None,
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            None => json::Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Option<Self> {
        match v {
            json::Value::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}
