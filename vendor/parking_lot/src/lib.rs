//! Minimal stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace patches
//! `parking_lot` to this crate (see the root manifest). Only the surface the
//! workspace actually uses is provided: [`Mutex`]/[`MutexGuard`] and
//! [`RwLock`], with `parking_lot`'s no-poisoning semantics (a poisoned std
//! lock is recovered rather than propagated).

use std::sync::PoisonError;

/// Mutex with `parking_lot`'s infallible `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock; unlike `std`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with `parking_lot`'s infallible signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new lock (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        static M: Mutex<i32> = Mutex::new(7);
        assert_eq!(*M.lock(), 7);
        *M.lock() += 1;
        assert_eq!(*M.lock(), 8);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
