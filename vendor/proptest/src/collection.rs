//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for vectors with a length drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::for_case("collection::tests", 0);
        let s = vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = s.gen(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }
}
