//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: `gen` draws
/// one concrete value from the deterministic per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// Regex-literal string strategies: `"[a-z]{1,8}:"` etc. See [`crate::string_gen`]
/// for the supported pattern subset.
impl Strategy for &str {
    type Value = String;
    fn gen(&self, rng: &mut TestRng) -> String {
        crate::string_gen::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-5i32..7).gen(&mut r);
            assert!((-5..7).contains(&v));
            let w = (1usize..=4).gen(&mut r);
            assert!((1..=4).contains(&w));
            let f = (-1.0f64..1.0).gen(&mut r);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_union_just_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(0u8), (1u8..4).prop_map(|v| v * 10),];
        for _ in 0..100 {
            let v = s.gen(&mut r);
            assert!(v == 0 || (10..40).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u8..2, 10i64..12, 0.0f64..1.0).gen(&mut r);
        assert!(a < 2 && (10..12).contains(&b) && (0.0..1.0).contains(&c));
    }
}
