//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draw one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Any<T> {
    /// Const-constructible instance (used by `prop::bool::ANY`).
    pub const NEW: Any<T> = Any(PhantomData);
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::NEW
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range — without NaN/inf,
        // which the real `any::<f64>()` also excludes by default.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32 - 30) as f64;
        mantissa * exp.exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, sometimes an arbitrary scalar value.
        if rng.below(4) == 0 {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::for_case("arbitrary::tests", 0);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.gen(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn any_f64_finite() {
        let mut rng = TestRng::for_case("arbitrary::tests", 1);
        for _ in 0..1000 {
            assert!(any::<f64>().gen(&mut rng).is_finite());
        }
    }
}
