//! Deterministic case runner state: configuration and the per-case RNG.

/// Mirror of `proptest::test_runner::Config` (prelude name `ProptestConfig`).
/// Only `cases` is consulted; the other fields exist so call sites using
/// struct-update syntax against the real crate keep compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no rejection sampling here).
    pub max_local_rejects: u32,
    /// Accepted for compatibility; unused.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // The real default is 256; 64 keeps the whole-pipeline property
            // suites (which simulate thousands of cycles per case) fast.
            cases: 64,
            max_local_rejects: 65_536,
            max_global_rejects: 1_024,
            max_shrink_iters: 0,
        }
    }
}

/// SplitMix64 generator seeded from the test's name and case index, so every
/// run of every platform generates identical cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test uniquely named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_name_and_case_same_stream() {
        let mut a = TestRng::for_case("mod::test", 3);
        let mut b = TestRng::for_case("mod::test", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::for_case("mod::test", 0);
        let mut b = TestRng::for_case("mod::test", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
