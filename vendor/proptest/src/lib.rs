//! Minimal stand-in for `proptest`, used because the build environment has no
//! crates.io access (the workspace patches `proptest` to this crate; see the
//! root manifest).
//!
//! Source-compatible with the subset the workspace uses:
//!
//! * the `proptest! { #[test] fn name(x in strategy, ...) { ... } }` macro,
//!   with an optional `#![proptest_config(...)]` header;
//! * [`strategy::Strategy`] with `prop_map` and `boxed`, integer/float range
//!   strategies, tuple strategies, [`strategy::Just`], `prop_oneof!`,
//!   [`collection::vec`], `any::<T>()`, `prop::bool::ANY`, and regex-literal
//!   `&str` strategies (a small generator covering the patterns in-tree);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! the generated values visible in the assertion message), and generation is
//! derandomized — each test's stream is seeded from its fully-qualified name
//! and case index, so runs are reproducible by construction.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string_gen;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub use crate::collection;

    /// Boolean strategies.
    pub mod bool {
        /// Uniformly random boolean.
        pub const ANY: crate::arbitrary::Any<::core::primitive::bool> = crate::arbitrary::Any::NEW;
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategies = ( $( $strat, )+ );
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ( $( $pat, )+ ) =
                        $crate::strategy::Strategy::gen(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Assert within a property (panics; no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Skip the current case when a generated precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            continue;
        }
    };
}

/// Choose uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
