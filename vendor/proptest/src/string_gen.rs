//! A small regex-pattern string *generator* backing `&str` strategies.
//!
//! Supported syntax (the subset used by this workspace's tests):
//!
//! * literal characters and `\`-escaped metacharacters (`\(`, `\)`, …);
//! * character classes `[a-z0-9_]` with ranges and single characters;
//! * groups with alternation `(ld|st|fld|fst)`, nestable;
//! * quantifiers `{n}`, `{n,m}`, `?`, `*`, `+` (unbounded forms capped at 8);
//! * `\PC` (any non-control character) and `\d`.
//!
//! Unsupported constructs panic with the offending pattern, so a typo fails
//! loudly rather than generating the wrong language.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// `\PC`: any character outside the Unicode control categories.
    NotControl,
    Class(Vec<(char, char)>),
    /// Alternation of sequences.
    Group(Vec<Vec<Node>>),
    Rep(Box<Node>, u32, u32),
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let seq = parse_seq(pattern, &chars, &mut pos, /*in_group=*/ false);
    assert!(
        pos == chars.len(),
        "trailing garbage in pattern {pattern:?} at {pos}"
    );
    let mut out = String::new();
    for node in &seq {
        emit(node, rng, &mut out);
    }
    out
}

fn parse_seq(pattern: &str, chars: &[char], pos: &mut usize, in_group: bool) -> Vec<Node> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        if in_group && (c == ')' || c == '|') {
            break;
        }
        let atom = match c {
            '(' => {
                *pos += 1;
                let mut alts = vec![parse_seq(pattern, chars, pos, true)];
                while chars.get(*pos) == Some(&'|') {
                    *pos += 1;
                    alts.push(parse_seq(pattern, chars, pos, true));
                }
                assert!(
                    chars.get(*pos) == Some(&')'),
                    "unclosed group in pattern {pattern:?}"
                );
                *pos += 1;
                Node::Group(alts)
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let lo = if chars[*pos] == '\\' {
                        *pos += 1;
                        chars[*pos]
                    } else {
                        chars[*pos]
                    };
                    *pos += 1;
                    if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
                        *pos += 1;
                        let hi = chars[*pos];
                        *pos += 1;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    chars.get(*pos) == Some(&']'),
                    "unclosed class in pattern {pattern:?}"
                );
                *pos += 1;
                Node::Class(ranges)
            }
            '\\' => {
                *pos += 1;
                let e = *chars
                    .get(*pos)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                *pos += 1;
                match e {
                    'P' => {
                        // Only `\PC` ("not control") is supported.
                        let cat = chars.get(*pos).copied();
                        assert!(
                            cat == Some('C'),
                            "unsupported \\P category {cat:?} in pattern {pattern:?}"
                        );
                        *pos += 1;
                        Node::NotControl
                    }
                    'd' => Node::Class(vec![('0', '9')]),
                    'n' => Node::Lit('\n'),
                    't' => Node::Lit('\t'),
                    'r' => Node::Lit('\r'),
                    c @ ('(' | ')' | '[' | ']' | '{' | '}' | '|' | '?' | '*' | '+' | '.' | '\\'
                    | '^' | '$' | '-') => Node::Lit(c),
                    other => panic!("unsupported escape \\{other} in pattern {pattern:?}"),
                }
            }
            '.' => {
                *pos += 1;
                Node::NotControl
            }
            c @ ('{' | '}' | '?' | '*' | '+' | '|' | ')' | ']') => {
                panic!("unexpected metacharacter {c:?} in pattern {pattern:?}")
            }
            c => {
                *pos += 1;
                Node::Lit(c)
            }
        };
        seq.push(apply_quantifier(pattern, chars, pos, atom));
    }
    seq
}

fn apply_quantifier(pattern: &str, chars: &[char], pos: &mut usize, atom: Node) -> Node {
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut lo = String::new();
            while chars[*pos].is_ascii_digit() {
                lo.push(chars[*pos]);
                *pos += 1;
            }
            let lo: u32 = lo
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition lower bound in pattern {pattern:?}"));
            let hi = if chars[*pos] == ',' {
                *pos += 1;
                let mut hi = String::new();
                while chars[*pos].is_ascii_digit() {
                    hi.push(chars[*pos]);
                    *pos += 1;
                }
                if hi.is_empty() {
                    lo + 8 // `{n,}`: open-ended, capped
                } else {
                    hi.parse().unwrap()
                }
            } else {
                lo
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "unclosed repetition in pattern {pattern:?}"
            );
            *pos += 1;
            Node::Rep(Box::new(atom), lo, hi)
        }
        Some('?') => {
            *pos += 1;
            Node::Rep(Box::new(atom), 0, 1)
        }
        Some('*') => {
            *pos += 1;
            Node::Rep(Box::new(atom), 0, 8)
        }
        Some('+') => {
            *pos += 1;
            Node::Rep(Box::new(atom), 1, 8)
        }
        _ => atom,
    }
}

/// Pool of non-ASCII, non-control characters mixed into `\PC` output so the
/// fuzzed parsers see multi-byte UTF-8.
const EXOTIC: &[char] = &[
    'é', 'ß', 'λ', 'Ж', '中', '한', '🦀', '∑', '«', '\u{a0}', '\u{2028}', '𝕏',
];

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::NotControl => {
            if rng.below(8) == 0 {
                out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
            } else {
                out.push((b' ' + rng.below(95) as u8) as char);
            }
        }
        Node::Class(ranges) => {
            let i = rng.below(ranges.len() as u64) as usize;
            let (lo, hi) = ranges[i];
            let span = hi as u32 - lo as u32 + 1;
            out.push(char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap());
        }
        Node::Group(alts) => {
            let i = rng.below(alts.len() as u64) as usize;
            for n in &alts[i] {
                emit(n, rng, out);
            }
        }
        Node::Rep(inner, lo, hi) => {
            let n = lo + rng.below((*hi - *lo + 1) as u64) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    fn rng(case: u32) -> TestRng {
        TestRng::for_case("string_gen::tests", case)
    }

    #[test]
    fn literal_and_class() {
        for case in 0..50 {
            let s = generate("[a-z]{1,8}:", &mut rng(case));
            assert!(s.ends_with(':'));
            let body = &s[..s.len() - 1];
            assert!((1..=8).contains(&body.len()));
            assert!(body.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn alternation_and_escapes() {
        for case in 0..50 {
            let s = generate("(ld|st|fld|fst)", &mut rng(case));
            assert!(["ld", "st", "fld", "fst"].contains(&s.as_str()));
            let t = generate(r" r[0-9]{1,2}, -?[0-9]{1,3}\(r[0-9]{1,2}\)", &mut rng(case));
            assert!(t.starts_with(" r") && t.contains('(') && t.ends_with(')'));
        }
    }

    #[test]
    fn not_control_never_emits_controls() {
        for case in 0..20 {
            let s = generate(r"\PC{0,400}", &mut rng(case));
            assert!(s.chars().count() <= 400);
            assert!(!s.chars().any(|c| c.is_control()));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported escape")]
    fn unknown_escape_is_loud() {
        generate(r"\q", &mut rng(0));
    }
}
