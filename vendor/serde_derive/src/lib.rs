//! `#[derive(Serialize, Deserialize)]` for the in-tree `serde` stand-in.
//!
//! Supports what the workspace uses: non-generic structs with named fields.
//! The generated impls lower to / lift from `serde::json::Value` field by
//! field. Written against `proc_macro` alone (no `syn`/`quote`, which are
//! unavailable offline), so input parsing is a small hand-rolled walk over
//! the token stream.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A struct's name and its named fields.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Extract `struct Name { field: Ty, ... }` from the derive input, skipping
/// attributes, visibility and doc comments. Panics (= compile error) on
/// enums, tuple structs or generics, which the stand-in does not support.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde stand-in: expected struct name, got {other:?}"),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("serde stand-in derive supports only structs with named fields")
            }
            _ => {}
        }
    }
    let name = name.expect("serde stand-in: no `struct` keyword in derive input");

    // After the name, the next brace group is the field list. Anything else
    // first (e.g. `<` starting generics) is unsupported.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde stand-in derive does not support generic structs")
            }
            Some(_) => continue,
            None => panic!("serde stand-in derive supports only structs with named fields"),
        }
    };

    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    while let Some(tt) = toks.next() {
        match tt {
            // Attribute on the field: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip optional `pub(...)` restriction.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => {
                        panic!("serde stand-in: expected `:` after field `{id}`, got {other:?}")
                    }
                }
                fields.push(id.to_string());
                // Skip the type: everything up to a comma at angle-depth 0.
                let mut depth = 0i32;
                for tt in toks.by_ref() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                        _ => {}
                    }
                }
            }
            other => panic!("serde stand-in: unexpected token in struct body: {other:?}"),
        }
    }
    StructShape { name, fields }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let members = shape
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect::<String>();
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{\n\
                 ::serde::json::Value::Obj(vec![{members}])\n\
             }}\n\
         }}",
        shape.name
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let fields = shape
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")?)?,"))
        .collect::<String>();
    format!(
        "impl ::serde::Deserialize for {} {{\n\
             fn from_value(v: &::serde::json::Value) -> ::core::option::Option<Self> {{\n\
                 ::core::option::Option::Some({} {{ {fields} }})\n\
             }}\n\
         }}",
        shape.name, shape.name
    )
    .parse()
    .unwrap()
}
