//! Minimal stand-in for `serde_json` over the in-tree `serde` stand-in's
//! [`serde::json::Value`] tree. Provides the entry points the workspace uses
//! (`to_vec_pretty`, `from_slice`, plus `to_string`/`from_str` for
//! completeness) with `serde_json`-shaped `Result`s.

pub use serde::json::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// `serde_json`-compatible result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a pretty-printed JSON byte vector.
pub fn to_vec_pretty<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    Ok(value.to_value().to_pretty_string().into_bytes())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_compact_string())
}

/// Serialize to a pretty-printed JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_pretty_string())
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(text)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = serde::json::parse(text).ok_or_else(|| Error("invalid JSON".to_string()))?;
    T::from_value(&value).ok_or_else(|| Error("JSON shape does not match target type".to_string()))
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        /// Doc comments and attributes must be skipped by the derive.
        name: String,
        ipc: f64,
        cycles: u64,
        fp: bool,
        shares: Vec<f64>,
    }

    #[test]
    fn derived_struct_roundtrips() {
        let s = Sample {
            name: "swim".into(),
            ipc: 1.618033988749895,
            cycles: 123_456_789,
            fp: true,
            shares: vec![0.25, 0.5, 0.25],
        };
        let bytes = super::to_vec_pretty(&s).unwrap();
        let back: Sample = super::from_slice(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        assert!(super::from_str::<Sample>("{\"name\": 3}").is_err());
        assert!(super::from_str::<Sample>("not json").is_err());
    }
}
