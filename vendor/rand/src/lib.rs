//! Minimal stand-in for `rand`, used because the build environment has no
//! crates.io access (the workspace patches `rand` to this crate; see the root
//! manifest).
//!
//! Deterministic by construction: [`rngs::StdRng`] is an xoshiro256**
//! generator seeded via SplitMix64, so a given seed always yields the same
//! stream on every platform. The stream differs from the real `rand`'s
//! `StdRng` (ChaCha12); anything derived from seeded randomness (e.g. golden
//! timing numbers over generated workloads) is calibrated to *this* stream.
//!
//! Provided surface: `StdRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` over integer/float ranges, and `SeedableRng`.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of `u64` words (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (stand-in for `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a "whole domain" uniform distribution (stand-in for sampling
/// `rand::distributions::Standard`).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that can be sampled uniformly (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (`rand`'s `StdRng` stand-in).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<i64>(), b.gen::<i64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            assert!(rng.gen_range(1i64..2) == 1);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
