//! # ring-clustered — facade crate
//!
//! Re-exports the whole RCMC stack behind one dependency, so examples,
//! integration tests and downstream users can write `use ring_clustered::…`.
//!
//! The stack reproduces *"Inherently Workload-Balanced Clustered
//! Microarchitecture"* (Abella & González, IPDPS 2005): a clustered
//! out-of-order processor whose clusters form a unidirectional ring in which
//! each cluster's bypass network feeds the *next* cluster, making
//! dependence-based steering inherently workload-balanced.
//!
//! Layer map (bottom → top):
//!
//! * [`isa`] — the mini instruction set (encoding, classes, registers).
//! * [`asm`] — assembler: text front end and programmatic builder.
//! * [`emu`] — functional emulator producing oracle traces.
//! * [`uarch`] — branch predictors, BTB/RAS, cache hierarchy.
//! * [`core`] — the clustered back end: ring/conventional topologies,
//!   steering algorithms, bus fabric, rename/issue/commit.
//! * [`workloads`] — SPEC2000 surrogate kernel generators.
//! * [`layout`] — §3.2 area/floorplan model.
//! * [`sim`] — configuration presets (Tables 2–3) and the experiment API:
//!   declarative `Plan`s executed by a `Session` into typed `ResultSet`s,
//!   plus the `rcmc serve` request loop.

pub use rcmc_asm as asm;
pub use rcmc_core as core;
pub use rcmc_emu as emu;
pub use rcmc_isa as isa;
pub use rcmc_layout as layout;
pub use rcmc_sim as sim;
pub use rcmc_uarch as uarch;
pub use rcmc_workloads as workloads;
