//! `rcmc` — command-line front end for the RCMC reproduction.
//!
//! ```text
//! rcmc list                         # benchmarks, configurations, plans
//! rcmc run swim --config Ring_8clus_1bus_2IW --instrs 100000
//! rcmc compare galgel --jobs 2      # Ring vs Conv side by side
//! rcmc disasm mcf --limit 40        # static code of a surrogate benchmark
//! rcmc trace view gzip --from 500 --len 24 [--config NAME]
//! rcmc trace record swim            # emulate + persist to the trace store
//! rcmc trace import f.trc --name x  # adopt an externally captured trace
//! rcmc trace list | verify | rm     # manage the on-disk trace store
//! rcmc figures --jobs 8             # regenerate every table and figure
//! rcmc csv --out sweep.csv          # main sweep as CSV
//! rcmc layout                       # §3.2 area/floorplan study
//! rcmc machines list                # the machine-family registry arch table
//! rcmc machines show wide           # one family's full delta
//! rcmc plan run spec.json           # execute a user-authored plan file
//! rcmc plan show main               # print a builtin plan as JSON
//! rcmc report steering-cross       # policy × topology matrix + analysis
//! rcmc serve                        # JSON-lines request loop on stdin/stdout
//! ```
//!
//! Every sweeping command goes through one [`Session`] (shared result
//! store, worker pool, stderr progress): `--jobs N` (default: `RCMC_JOBS`,
//! else all cores) sizes the pool, and results are bit-identical at any
//! worker count. Unknown flags and unparsable flag values are hard errors
//! (exit code 2), not silently ignored.

use std::collections::HashMap;

use ring_clustered::core::{Core, PipeTracer};
use ring_clustered::emu::{trace_program, TraceDb};
use ring_clustered::sim::experiments::{self, plans};
use ring_clustered::sim::plan::ConfigSpec;
use ring_clustered::sim::runner::{
    cached_trace, default_jobs, default_trace_db, trace_cache_stats, Budget, SweepProgress,
};
use ring_clustered::sim::{config, machines, serve, Plan, Progress, ResultStore, Session};
use ring_clustered::workloads::{benchmark, suite};

fn main() {
    check_jobs_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return;
    };
    let flags = match cmd.as_str() {
        "list" | "layout" => parse_flags(cmd, &args[1..], &[], &[]),
        "serve" => parse_flags(
            cmd,
            &args[1..],
            &["jobs", "store", "queue-limit", "progress", "trace-store"],
            &["no-trace-store"],
        ),
        "run" => parse_flags(
            cmd,
            &args[1..],
            &[
                "config",
                "machine",
                "topology",
                "steering",
                "instrs",
                "warmup",
                "jobs",
                "trace-store",
            ],
            &["no-trace-store"],
        ),
        "machines" => parse_flags(cmd, &args[1..], &[], &[]),
        "compare" => parse_flags(cmd, &args[1..], &["instrs", "warmup", "jobs"], &[]),
        "disasm" => parse_flags(cmd, &args[1..], &["limit"], &[]),
        "trace" => {
            // Flag vocabulary depends on the verb; `parse_flags` skips bare
            // words, so handing it the verb as a positional is harmless.
            let allowed: &[&str] = match args.get(1).map(String::as_str) {
                Some("view") => &["from", "len", "config"],
                Some("record") => &["len", "trace-store"],
                Some("import") => &["name", "trace-store"],
                Some("rm") => &["len", "trace-store"],
                _ => &["trace-store"], // list | verify | errors
            };
            parse_flags(cmd, &args[1..], allowed, &[])
        }
        "figures" | "report" => parse_flags(cmd, &args[1..], &["jobs"], &[]),
        "csv" => parse_flags(cmd, &args[1..], &["out", "jobs"], &[]),
        "plan" => parse_flags(
            cmd,
            &args[1..],
            &["jobs", "out", "store", "machine", "trace-store"],
            &["no-trace-store"],
        ),
        other => {
            eprintln!("unknown command '{other}'\n");
            usage();
            std::process::exit(1);
        }
    };
    match cmd.as_str() {
        "list" => list(),
        "run" => run(&args, &flags),
        "compare" => compare(&args, &flags),
        "disasm" => disasm(&args, &flags),
        "trace" => trace_cmd(&args, &flags),
        "figures" => figures(&flags),
        "csv" => csv(&flags),
        "layout" => layout(),
        "machines" => machines_cmd(&args),
        "plan" => plan_cmd(&args, &flags),
        "report" => report_cmd(&args, &flags),
        "serve" => serve_cmd(&flags),
        _ => unreachable!("validated above"),
    }
}

fn usage() {
    eprintln!(
        "rcmc — ring clustered microarchitecture (IPDPS'05 reproduction)\n\
         \n\
         commands:\n\
         \x20 list                          benchmarks, configurations, builtin plans\n\
         \x20 run <bench> [--config NAME | --machine FAMILY]\n\
         \x20                               [--topology ring|conv|crossbar|mesh|hier]\n\
         \x20                               [--steering ringdep|dcount|ssa]\n\
         \x20                               [--instrs N] [--warmup N] [--jobs N]\n\
         \x20 compare <bench> [--instrs N] [--warmup N] [--jobs N]\n\
         \x20                               Ring vs Conv side by side\n\
         \x20 disasm <bench> [--limit N]    static surrogate code\n\
         \x20 trace view <bench> [--from I] [--len N] [--config NAME]\n\
         \x20                               cycle-by-cycle pipeline view\n\
         \x20 trace record <bench> [--len N]   emulate + persist to the trace store\n\
         \x20 trace import <file> [--name N]   adopt an external .trc as a workload\n\
         \x20 trace list | verify [name] | rm <name> [--len N]\n\
         \x20                               manage the on-disk trace store\n\
         \x20 figures [--jobs N]            regenerate all tables/figures\n\
         \x20 csv [--out FILE] [--jobs N]   dump the main sweep as CSV\n\
         \x20 layout                        area + floorplan study\n\
         \x20 machines list                 the machine-family registry (arch table)\n\
         \x20 machines show <family>        one family's full CoreConfig delta\n\
         \x20 plan run <spec.json> [--jobs N] [--out FILE] [--store DIR]\n\
         \x20                      [--machine FAMILY]\n\
         \x20                               execute a plan spec file (--machine sets\n\
         \x20                               the family on every axes-form entry)\n\
         \x20 plan show <name>              print a builtin plan as JSON\n\
         \x20 plan list                     builtin plans + the machine registry\n\
         \x20 report steering-cross [--jobs N]\n\
         \x20                               policy × topology matrix + decomposition\n\
         \x20 serve [--jobs N] [--store DIR] [--queue-limit N] [--progress stderr|none]\n\
         \x20                               concurrent JSON-lines request loop on\n\
         \x20                               stdin/stdout (see README 'Serve concurrency')\n\
         \n\
         run, plan run, serve and every trace verb also accept\n\
         \x20 --trace-store DIR             use an explicit on-disk trace store\n\
         \x20 --no-trace-store              emulate everything, persist nothing\n\
         \x20                               (not a trace verb flag)\n\
         \n\
         environment:\n\
         \x20 RCMC_INSTRS / RCMC_WARMUP     default measurement window\n\
         \x20 RCMC_JOBS                     default sweep worker count (else all cores)\n\
         \x20 RCMC_TRACE_DIR                trace store directory ('off' disables;\n\
         \x20                               default target/rcmc-traces)\n\
         \n\
         --jobs parallelizes sweeps; `run` accepts it for symmetry but a single\n\
         run always uses one worker.\n\
         --topology rebuilds the chosen configuration on another interconnect\n\
         (ring | conv/bus | crossbar/xbar | mesh | hier) with that topology's\n\
         default steering; --steering then overrides the policy (ringdep/dep |\n\
         dcount | ssa) — any policy drives any fabric.\n\
         --machine builds on a registry family's sizing instead of a preset\n\
         (`rcmc machines list`); it cannot be combined with --config.\n\
         Plan spec files and the serve protocol are documented in the README\n\
         ('Experiment plans')."
    );
}

/// Parse `--flag value` pairs plus bare `--switch` toggles, rejecting
/// flags outside `allowed`/`switches` and value flags with a missing
/// value. Bare words (positionals) pass through untouched; a present
/// switch maps to `"true"`.
fn parse_flags(
    cmd: &str,
    rest: &[String],
    allowed: &[&str],
    switches: &[&str],
) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        if let Some(key) = rest[i].strip_prefix("--") {
            if switches.contains(&key) {
                out.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            if !allowed.contains(&key) {
                eprintln!("unknown flag '--{key}' for '{cmd}'\n");
                usage();
                std::process::exit(2);
            }
            match rest.get(i + 1) {
                Some(val) if !val.starts_with("--") => {
                    out.insert(key.to_string(), val.clone());
                    i += 2;
                }
                _ => {
                    eprintln!("flag '--{key}' needs a value");
                    std::process::exit(2);
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Fetch a numeric flag; an unparsable value is a hard error, not a default.
fn num_flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str) -> Option<T> {
    flags.get(key).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value '{v}' for --{key}");
            std::process::exit(2);
        })
    })
}

fn positional(args: &[String], idx: usize, what: &str) -> String {
    args.get(idx).cloned().unwrap_or_else(|| {
        eprintln!("missing {what}");
        std::process::exit(1);
    })
}

fn budget_from(flags: &HashMap<String, String>) -> Budget {
    let mut b = Budget::default();
    if let Some(v) = num_flag(flags, "instrs") {
        b.measure = v;
    }
    if let Some(v) = num_flag(flags, "warmup") {
        b.warmup = v;
    }
    b
}

fn jobs_from(flags: &HashMap<String, String>) -> usize {
    match num_flag::<usize>(flags, "jobs") {
        Some(0) => {
            eprintln!("--jobs must be at least 1\n");
            usage();
            std::process::exit(2);
        }
        Some(n) => n,
        None => default_jobs(),
    }
}

/// Reject `RCMC_JOBS=0` up front — it would otherwise be silently ignored
/// (falling back to all cores), which hides the configuration mistake.
fn check_jobs_env() {
    if std::env::var("RCMC_JOBS").is_ok_and(|v| v.trim().parse::<usize>() == Ok(0)) {
        eprintln!("RCMC_JOBS must be at least 1 (unset it to use all cores)\n");
        usage();
        std::process::exit(2);
    }
}

/// The shared CLI execution environment: default store, `--jobs` pool,
/// stderr progress line.
fn session_from(flags: &HashMap<String, String>) -> Session {
    Session::new()
        .with_jobs(jobs_from(flags))
        .with_progress(Progress::Stderr)
}

/// Resolve `--trace-store DIR` / `--no-trace-store` (default: the
/// process-wide store, itself governed by `RCMC_TRACE_DIR`).
fn trace_db_from(flags: &HashMap<String, String>) -> Option<TraceDb> {
    if flags.contains_key("no-trace-store") {
        return None;
    }
    match flags.get("trace-store") {
        Some(dir) => Some(TraceDb::at(dir.into())),
        None => default_trace_db().cloned(),
    }
}

/// Apply [`trace_db_from`] to a session.
fn with_trace_db(session: Session, flags: &HashMap<String, String>) -> Session {
    match trace_db_from(flags) {
        Some(db) => session.with_trace_store(db),
        None => session.without_trace_store(),
    }
}

/// The trace-management verbs need a concrete store; explain the escape
/// hatches if the default one is disabled.
fn trace_db_required(flags: &HashMap<String, String>) -> TraceDb {
    trace_db_from(flags).unwrap_or_else(|| {
        die("the trace store is disabled (RCMC_TRACE_DIR); pass --trace-store DIR".to_string())
    })
}

fn find_config(name: &str) -> config::SimConfig {
    config::find_config(name).unwrap_or_else(|| {
        eprintln!("unknown configuration '{name}' (see `rcmc list`)");
        std::process::exit(1);
    })
}

fn list() {
    println!("benchmarks (12 INT + 14 FP SPEC2000 surrogates):");
    for b in suite() {
        let class = if b.is_fp() { "FP " } else { "INT" };
        println!("  {:10} {class}  {:?}", b.name, b.kernel);
    }
    println!("\nconfigurations (Table 3 + §4.6 + §4.7 + topology-ablation + steering-cross):");
    for c in config::known_configs() {
        println!("  {}", c.name);
    }
    println!("\nbuiltin plans (rcmc plan show <name>):");
    for p in plans::BUILTIN {
        println!("  {p}");
    }
}

fn print_result(r: &ring_clustered::sim::RunResult) {
    println!("  IPC                {:>8.3}", r.ipc);
    println!("  comms/instruction  {:>8.3}", r.comms_per_insn);
    println!("  hops/communication {:>8.2}", r.dist_per_comm);
    println!("  bus wait/comm      {:>8.2}", r.wait_per_comm);
    println!("  NREADY/cycle       {:>8.2}", r.nready);
    println!("  branch miss rate   {:>8.3}", r.branch_miss_rate);
    let shares: Vec<String> = r
        .dispatch_shares
        .iter()
        .map(|s| format!("{:.0}%", s * 100.0))
        .collect();
    println!("  dispatch shares    [{}]", shares.join(" "));
}

fn run(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 1, "benchmark name");
    let cfg = if let Some(family) = flags.get("machine") {
        // A family is a different way of choosing the base sizing, so it
        // conflicts with a preset name; topology/steering still compose.
        if flags.contains_key("config") {
            eprintln!("--machine cannot be combined with --config\n");
            usage();
            std::process::exit(2);
        }
        let spec = ConfigSpec {
            machine: Some(family.clone()),
            topology: flags.get("topology").cloned(),
            steering: flags.get("steering").cloned(),
            ..ConfigSpec::default()
        };
        spec.resolve().unwrap_or_else(die).remove(0)
    } else {
        let cfg_name = flags
            .get("config")
            .cloned()
            .unwrap_or_else(|| "Ring_8clus_1bus_2IW".to_string());
        let mut cfg = find_config(&cfg_name);
        if let Some(t) = flags.get("topology") {
            let Some(topology) = config::parse_topology(t) else {
                eprintln!("unknown topology '{t}' (ring | conv | crossbar | mesh | hier)");
                std::process::exit(2);
            };
            cfg = config::with_topology(&cfg, topology);
        }
        if let Some(s) = flags.get("steering") {
            let Some(steering) = config::parse_steering(s) else {
                eprintln!("unknown steering '{s}' (ringdep | dcount | ssa)");
                std::process::exit(2);
            };
            cfg = config::with_steering(&cfg, steering);
        }
        cfg
    };
    let budget = budget_from(flags);
    let _ = jobs_from(flags); // validated; a single run always uses one worker
    let session = with_trace_db(Session::new(), flags);
    let r = session.run_one(&cfg, &bench, &budget);
    println!(
        "{bench} on {} ({} measured instructions):",
        cfg.name, r.committed
    );
    print_result(&r);
}

fn compare(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 1, "benchmark name");
    let session = session_from(flags);
    // Both sides are one plan, so `--jobs 2` runs them concurrently.
    let plan = Plan::new("compare")
        .config_named("Ring_8clus_1bus_2IW")
        .config_named("Conv_8clus_1bus_2IW")
        .bench(&bench)
        .budget(budget_from(flags));
    let results = session.run(&plan).unwrap_or_else(die);
    let ring = results.get("Ring_8clus_1bus_2IW", &bench).unwrap();
    let conv = results.get("Conv_8clus_1bus_2IW", &bench).unwrap();
    println!("{bench}: Ring_8clus_1bus_2IW");
    print_result(ring);
    println!("{bench}: Conv_8clus_1bus_2IW");
    print_result(conv);
    println!(
        "Ring speedup over Conv: {:+.1}%",
        (ring.ipc / conv.ipc - 1.0) * 100.0
    );
}

fn disasm(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 1, "benchmark name");
    let limit: usize = num_flag(flags, "limit").unwrap_or(64);
    let Some(b) = benchmark(&bench) else {
        eprintln!("unknown benchmark '{bench}'");
        std::process::exit(1);
    };
    let program = b.build();
    println!(
        "{bench}: {} static instructions, {} bytes of data",
        program.insns.len(),
        program.data_len()
    );
    for line in program.disassemble().lines().take(limit) {
        println!("{line}");
    }
    if program.insns.len() > limit {
        println!("... ({} more; use --limit)", program.insns.len() - limit);
    }
}

fn trace_cmd(args: &[String], flags: &HashMap<String, String>) {
    let sub = positional(
        args,
        1,
        "trace subcommand (view | record | import | list | rm | verify)",
    );
    match sub.as_str() {
        "view" => trace_view(args, flags),
        "record" => trace_record(args, flags),
        "import" => trace_import(args, flags),
        "list" => trace_list(flags),
        "rm" => trace_rm(args, flags),
        "verify" => trace_verify(args, flags),
        other => {
            if benchmark(other).is_some() {
                eprintln!("the pipeline view moved: use `rcmc trace view {other} ...`");
            } else {
                eprintln!("unknown trace subcommand '{other}' (view | record | import | list | rm | verify)");
            }
            std::process::exit(1);
        }
    }
}

fn trace_view(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 2, "benchmark name");
    let from: u32 = num_flag(flags, "from").unwrap_or(1000);
    let len: u32 = num_flag(flags, "len").unwrap_or(24);
    let cfg_name = flags
        .get("config")
        .cloned()
        .unwrap_or_else(|| "Ring_8clus_1bus_2IW".to_string());
    let cfg = find_config(&cfg_name);
    let trace = cached_trace(&bench, (from + len) as u64 + 50_000);
    let mut core = Core::new(cfg.core.clone(), cfg.mem, cfg.pred, &trace);
    core.attach_tracer(PipeTracer::new(from, from + len));
    core.run((from + len) as u64 + 20_000);
    let tracer = core.take_tracer().unwrap();
    println!(
        "{bench} on {cfg_name}, dynamic instructions {from}..{}",
        from + len
    );
    print!("{}", tracer.render(&trace, 100));
    let (wait, lat) = tracer.latency_summary();
    println!("mean dispatch→issue wait {wait:.1} cycles; mean issue→complete {lat:.1} cycles");
}

/// `rcmc trace record <bench> [--len N]` — emulate a suite benchmark and
/// persist its oracle trace, making later runs (any process) warm-start.
fn trace_record(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 2, "benchmark name");
    let Some(b) = benchmark(&bench) else {
        eprintln!("unknown benchmark '{bench}' (see `rcmc list`)");
        std::process::exit(1);
    };
    let len: u64 = num_flag(flags, "len").unwrap_or_else(|| Budget::default().trace_len());
    let db = trace_db_required(flags);
    let trace =
        trace_program(&b.build(), len as usize).unwrap_or_else(|e| die(format!("{bench}: {e}")));
    let n = trace.insns.len();
    if !db.save(&bench, len, &trace) {
        die::<()>(format!(
            "trace store '{}' is not writable",
            db.dir().display()
        ));
    }
    println!(
        "recorded {bench}/{len}: {n} dynamic instructions -> {}",
        db.dir().join(&bench).join(format!("{len}.trc")).display()
    );
}

/// `rcmc trace import <file> [--name NAME]` — adopt an externally captured
/// `.trc` file (full strict validation) as a named workload.
fn trace_import(args: &[String], flags: &HashMap<String, String>) {
    let path = positional(args, 2, "trace file");
    let bytes = std::fs::read(&path).unwrap_or_else(|e| die(format!("cannot read '{path}': {e}")));
    let db = trace_db_required(flags);
    match db.import(&bytes, flags.get("name").map(String::as_str)) {
        Ok((name, len)) => println!(
            "imported '{path}' as workload '{name}' ({len} instructions); \
             run it like any benchmark: `rcmc run {name}`"
        ),
        Err(e) => die(format!("invalid trace file '{path}': {e}")),
    }
}

/// `rcmc trace list` — catalog the store.
fn trace_list(flags: &HashMap<String, String>) {
    let db = trace_db_required(flags);
    let metas = db.list();
    if metas.is_empty() {
        println!("trace store {} is empty", db.dir().display());
        return;
    }
    println!("trace store {}:", db.dir().display());
    println!(
        "  {:<24} {:>12} {:>12} {:>10}  run",
        "name/len", "insns", "bytes", "version"
    );
    for m in metas {
        println!(
            "  {:<24} {:>12} {:>12} {:>10}  {}",
            format!("{}/{}", m.name, m.len),
            m.insns,
            m.bytes,
            m.trace_version,
            if m.halted { "halted" } else { "budget" },
        );
    }
}

/// `rcmc trace rm <name> [--len N]` — evict stored traces.
fn trace_rm(args: &[String], flags: &HashMap<String, String>) {
    let name = positional(args, 2, "workload name");
    let db = trace_db_required(flags);
    let removed = db.remove(&name, num_flag(flags, "len"));
    println!("removed {removed} trace file(s) for '{name}'");
    if removed == 0 {
        std::process::exit(1);
    }
}

/// `rcmc trace verify [<name>]` — strict-decode every stored trace (full
/// per-record ISA validation, not just the checksum) and report damage.
fn trace_verify(args: &[String], flags: &HashMap<String, String>) {
    let db = trace_db_required(flags);
    let only = args.get(2).filter(|a| !a.starts_with("--"));
    let metas: Vec<_> = db
        .list()
        .into_iter()
        .filter(|m| only.is_none_or(|n| &m.name == n))
        .collect();
    if metas.is_empty() {
        println!("nothing to verify in {}", db.dir().display());
        return;
    }
    let mut bad = 0;
    for m in &metas {
        match db.verify(&m.name, m.len) {
            Ok(n) => println!("ok      {}/{} ({n} instructions)", m.name, m.len),
            Err(e) => {
                bad += 1;
                println!("CORRUPT {}/{}: {e}", m.name, m.len);
            }
        }
    }
    println!("{} verified, {bad} corrupt", metas.len() - bad);
    if bad > 0 {
        std::process::exit(1);
    }
}

fn die<T>(e: String) -> T {
    eprintln!("rcmc: {e}");
    std::process::exit(1);
}

fn figures(flags: &HashMap<String, String>) {
    let session = session_from(flags);
    for ex in experiments::run_all(&session).unwrap_or_else(die) {
        println!("================================================================");
        println!("{}", ex.text);
    }
}

fn csv(flags: &HashMap<String, String>) {
    let session = session_from(flags);
    let results = session.run(&plans::main()).unwrap_or_else(die);
    let csv = results.to_csv();
    match flags.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &csv).expect("failed to write CSV");
            eprintln!("wrote {} rows to {path}", csv.lines().count() - 1);
        }
        _ => print!("{csv}"),
    }
}

fn layout() {
    // Reuse the layout example's content through the library API.
    let ex = experiments::table1();
    println!("{}", ex.text);
    let ex = experiments::figure4_5();
    println!("{}", ex.text);
    for n in [4usize, 8] {
        let p = ring_clustered::layout::ring_placement(n);
        let (s, c) = p.module_counts();
        println!("Figure 3: {n} clusters -> {s} straight + {c} corner modules");
    }
    // Sanity: the emulator and suite agree (cheap self-check for the CLI).
    let b = benchmark("swim").unwrap();
    let t = trace_program(&b.build(), 1000).unwrap();
    assert_eq!(t.insns.len(), 1000);
}

/// `rcmc machines list|show <family>` — the machine-family registry.
fn machines_cmd(args: &[String]) {
    let sub = positional(args, 1, "machines subcommand (list | show)");
    match sub.as_str() {
        "list" => print!("{}", machines::render_table()),
        "show" => {
            let name = positional(args, 2, "machine family name");
            match machines::find(&name) {
                Some(m) => print!("{}", m.show()),
                None => die(format!(
                    "unknown machine '{name}' (one of: {})",
                    machines::names().join(" | ")
                )),
            }
        }
        other => {
            eprintln!("unknown machines subcommand '{other}' (list | show)");
            std::process::exit(1);
        }
    }
}

fn plan_cmd(args: &[String], flags: &HashMap<String, String>) {
    let sub = positional(args, 1, "plan subcommand (run | show | list)");
    match sub.as_str() {
        "list" => {
            println!("builtin plans (rcmc plan show <name>):");
            for p in plans::BUILTIN {
                println!("  {p}");
            }
            println!("\nmachine families (\"machine\" on axes-form config entries):");
            print!("{}", machines::render_table());
        }
        "show" => {
            let name = positional(args, 2, "builtin plan name");
            let Some(plan) = plans::builtin(&name) else {
                eprintln!(
                    "unknown builtin plan '{name}' (one of: {})",
                    plans::BUILTIN.join(" | ")
                );
                std::process::exit(1);
            };
            print!("{}", plan.to_json());
        }
        "run" => {
            let path = positional(args, 2, "plan spec file");
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read '{path}': {e}");
                std::process::exit(1);
            });
            let mut plan = Plan::from_json(&text)
                .unwrap_or_else(|e| die(format!("invalid plan spec '{path}': {e}")));
            if let Some(family) = flags.get("machine") {
                if machines::find(family).is_none() {
                    die::<()>(format!(
                        "unknown machine '{family}' (one of: {})",
                        machines::names().join(" | ")
                    ));
                }
                // The flag re-bases every axes-form entry onto the family;
                // group/name entries cannot take a machine, so a plan with
                // no axes entries has nothing for the flag to act on.
                let mut rebased = 0;
                for spec in &mut plan.configs {
                    if spec.group.is_none() && spec.name.is_none() {
                        spec.machine = Some(family.clone());
                        rebased += 1;
                    }
                }
                if rebased == 0 {
                    die::<()>(format!(
                        "--machine {family}: plan '{}' has no axes-form config \
                         entries to apply it to",
                        plan.name
                    ));
                }
                eprintln!("--machine {family}: applied to {rebased} config entries");
            }
            match num_flag::<usize>(flags, "jobs") {
                Some(0) => {
                    eprintln!("--jobs must be at least 1");
                    std::process::exit(2);
                }
                Some(jobs) => plan = plan.jobs(jobs),
                None => {}
            }
            // `--store DIR` isolates result memoization (CI uses separate
            // stores with one shared trace store to prove warm-starting).
            let store = match flags.get("store") {
                Some(dir) => ResultStore::at(dir.into()),
                None => ResultStore::open_default(),
            };
            let session = with_trace_db(
                Session::with_store(store).with_progress(Progress::Stderr),
                flags,
            );
            let (cfgs, benches) = plan.resolve_in(session.trace_db()).unwrap_or_else(die);
            eprintln!(
                "plan '{}': {} configurations × {} benchmarks",
                plan.name,
                cfgs.len(),
                benches.len(),
            );
            // Stream progress to stderr while recording the final sweep
            // tallies — CI's cold-then-warm machine-sweep check asserts on
            // the executed/memoized summary line below.
            let tallies = std::sync::Mutex::new((0usize, 0usize));
            let record = |p: &SweepProgress<'_>| {
                p.eprint_status();
                *tallies.lock().unwrap() = (p.finished, p.memoized);
            };
            let rs = session.run_streaming(&plan, &record).unwrap_or_else(die);
            let (executed, memoized) = *tallies.lock().unwrap();
            eprintln!("jobs: {executed} executed, {memoized} memoized");
            let ts = trace_cache_stats();
            eprintln!(
                "traces: {} emulated, {} loaded from trace store",
                ts.built, ts.db_hits
            );
            let mut out = String::new();
            if plan.reports.is_empty() {
                out.push_str(&rs.to_csv());
            } else {
                let order: Vec<String> = cfgs.into_iter().map(|c| c.name).collect();
                for r in plan.render_reports_for(&rs, &order).unwrap_or_else(die) {
                    out.push_str(&r.text);
                    out.push('\n');
                }
            }
            match flags.get("out") {
                Some(path) if !path.is_empty() => {
                    std::fs::write(path, &out).expect("failed to write output");
                    eprintln!("wrote {path}");
                }
                _ => print!("{out}"),
            }
        }
        other => {
            eprintln!("unknown plan subcommand '{other}' (run | show | list)");
            std::process::exit(1);
        }
    }
}

fn report_cmd(args: &[String], flags: &HashMap<String, String>) {
    let which = positional(args, 1, "report name (steering-cross)");
    match which.as_str() {
        "steering-cross" => {
            let session = session_from(flags);
            let rs = session.run(&plans::steering_cross()).unwrap_or_else(die);
            let matrix = experiments::steering_cross(&rs);
            let analysis = experiments::steering_cross_analysis(&rs);
            println!("{}", matrix.text);
            println!("{}", analysis.text);
        }
        other => {
            eprintln!("unknown report '{other}' (steering-cross)");
            std::process::exit(1);
        }
    }
}

fn serve_cmd(flags: &HashMap<String, String>) {
    // `--store DIR` isolates this service instance's memoization (load
    // tests want a cold store; deployments may want a shared warm one).
    let store = match flags.get("store") {
        Some(dir) => ResultStore::at(dir.into()),
        None => ResultStore::open_default(),
    };
    let mut session = with_trace_db(
        Session::with_store(store).with_jobs(jobs_from(flags)),
        flags,
    );
    // Default stays silent: serve streams its own JSON progress events.
    // `--progress stderr` additionally mirrors the labelled status line.
    match flags.get("progress").map(String::as_str) {
        Some("stderr") => session = session.with_progress(Progress::Stderr),
        Some("none") | None => {}
        Some(other) => {
            eprintln!("invalid value '{other}' for --progress (stderr | none)");
            std::process::exit(2);
        }
    }
    let opts = serve::ServeOpts {
        queue_limit: match num_flag::<usize>(flags, "queue-limit") {
            Some(0) => {
                eprintln!("--queue-limit must be at least 1");
                std::process::exit(2);
            }
            Some(n) => n,
            None => serve::DEFAULT_QUEUE_LIMIT,
        },
    };
    let stdin = std::io::stdin();
    match serve::serve_with(&session, stdin.lock(), std::io::stdout(), &opts) {
        Ok(s) => eprintln!(
            "rcmc serve: {} requests, {} plans accepted, {} jobs executed, \
             {} coalesced, {} memoized, {} cancelled",
            s.requests,
            s.runs,
            s.stats.executed,
            s.stats.coalesced,
            s.stats.memoized,
            s.stats.cancelled,
        ),
        Err(e) => die(format!("serve: {e}")),
    }
}
