//! `rcmc` — command-line front end for the RCMC reproduction.
//!
//! ```text
//! rcmc list                         # benchmarks and configurations
//! rcmc run swim --config Ring_8clus_1bus_2IW --instrs 100000
//! rcmc compare galgel --jobs 2      # Ring vs Conv side by side
//! rcmc disasm mcf --limit 40        # static code of a surrogate benchmark
//! rcmc trace gzip --from 500 --len 24 [--config NAME]
//! rcmc figures --jobs 8             # regenerate every table and figure
//! rcmc csv --out sweep.csv          # main sweep as CSV
//! rcmc layout                       # §3.2 area/floorplan study
//! ```
//!
//! Sweeping commands (`compare`, `figures`, `csv`) fan out over a thread
//! pool: `--jobs N` (default: `RCMC_JOBS`, else all cores). Results are
//! bit-identical at any worker count. Unknown flags and unparsable flag
//! values are hard errors (exit code 2), not silently ignored.

use std::collections::HashMap;

use ring_clustered::core::{Core, PipeTracer};
use ring_clustered::emu::trace_program;
use ring_clustered::sim::runner::{
    cached_trace, default_jobs, Budget, ResultStore, SweepOpts, SweepProgress,
};
use ring_clustered::sim::{config, experiments, runner};
use ring_clustered::workloads::{benchmark, suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return;
    };
    let flags = match cmd.as_str() {
        "list" | "layout" => parse_flags(cmd, &args[1..], &[]),
        "run" => parse_flags(
            cmd,
            &args[1..],
            &["config", "topology", "steering", "instrs", "warmup", "jobs"],
        ),
        "compare" => parse_flags(cmd, &args[1..], &["instrs", "warmup", "jobs"]),
        "disasm" => parse_flags(cmd, &args[1..], &["limit"]),
        "trace" => parse_flags(cmd, &args[1..], &["from", "len", "config"]),
        "figures" => parse_flags(cmd, &args[1..], &["jobs"]),
        "csv" => parse_flags(cmd, &args[1..], &["out", "jobs"]),
        other => {
            eprintln!("unknown command '{other}'\n");
            usage();
            std::process::exit(1);
        }
    };
    match cmd.as_str() {
        "list" => list(),
        "run" => run(&args, &flags),
        "compare" => compare(&args, &flags),
        "disasm" => disasm(&args, &flags),
        "trace" => trace_cmd(&args, &flags),
        "figures" => figures(&flags),
        "csv" => csv(&flags),
        "layout" => layout(),
        _ => unreachable!("validated above"),
    }
}

fn usage() {
    eprintln!(
        "rcmc — ring clustered microarchitecture (IPDPS'05 reproduction)\n\
         \n\
         commands:\n\
         \x20 list                          benchmarks and configurations\n\
         \x20 run <bench> [--config NAME] [--topology ring|conv|crossbar|mesh|hier]\n\
         \x20                               [--steering ringdep|dcount|ssa]\n\
         \x20                               [--instrs N] [--warmup N] [--jobs N]\n\
         \x20 compare <bench> [--instrs N] [--warmup N] [--jobs N]\n\
         \x20                               Ring vs Conv side by side\n\
         \x20 disasm <bench> [--limit N]    static surrogate code\n\
         \x20 trace <bench> [--from I] [--len N] [--config NAME]\n\
         \x20                               cycle-by-cycle pipeline view\n\
         \x20 figures [--jobs N]            regenerate all tables/figures\n\
         \x20 csv [--out FILE] [--jobs N]   dump the main sweep as CSV\n\
         \x20 layout                        area + floorplan study\n\
         \n\
         environment:\n\
         \x20 RCMC_INSTRS / RCMC_WARMUP     default measurement window\n\
         \x20 RCMC_JOBS                     default sweep worker count (else all cores)\n\
         \n\
         --jobs parallelizes sweeps (compare/figures/csv); `run` accepts it for\n\
         symmetry but a single run always uses one worker.\n\
         --topology rebuilds the chosen configuration on another interconnect\n\
         (ring | conv/bus | crossbar/xbar | mesh | hier) with that topology's\n\
         default steering; --steering then overrides the policy (ringdep/dep |\n\
         dcount | ssa) — any policy drives any fabric."
    );
}

/// Parse `--flag value` pairs, rejecting flags outside `allowed` and flags
/// with a missing value. Bare words (positionals) pass through untouched.
fn parse_flags(cmd: &str, rest: &[String], allowed: &[&str]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        if let Some(key) = rest[i].strip_prefix("--") {
            if !allowed.contains(&key) {
                eprintln!("unknown flag '--{key}' for '{cmd}'\n");
                usage();
                std::process::exit(2);
            }
            match rest.get(i + 1) {
                Some(val) if !val.starts_with("--") => {
                    out.insert(key.to_string(), val.clone());
                    i += 2;
                }
                _ => {
                    eprintln!("flag '--{key}' needs a value");
                    std::process::exit(2);
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Fetch a numeric flag; an unparsable value is a hard error, not a default.
fn num_flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str) -> Option<T> {
    flags.get(key).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value '{v}' for --{key}");
            std::process::exit(2);
        })
    })
}

fn positional(args: &[String], idx: usize, what: &str) -> String {
    args.get(idx).cloned().unwrap_or_else(|| {
        eprintln!("missing {what}");
        std::process::exit(1);
    })
}

fn budget_from(flags: &HashMap<String, String>) -> Budget {
    let mut b = Budget::default();
    if let Some(v) = num_flag(flags, "instrs") {
        b.measure = v;
    }
    if let Some(v) = num_flag(flags, "warmup") {
        b.warmup = v;
    }
    b
}

fn jobs_from(flags: &HashMap<String, String>) -> usize {
    match num_flag::<usize>(flags, "jobs") {
        Some(0) => {
            eprintln!("--jobs must be at least 1");
            std::process::exit(2);
        }
        Some(n) => n,
        None => default_jobs(),
    }
}

fn all_configs() -> impl Iterator<Item = config::SimConfig> {
    // Later groups repeat some earlier names (the ablation/cross grids
    // deliberately reuse Table 3 configurations); keep the first of each.
    let mut seen = std::collections::HashSet::new();
    config::evaluated_configs()
        .into_iter()
        .chain(config::fig12_configs())
        .chain(config::ssa_configs())
        .chain(config::topology_ablation_configs())
        .chain(config::steering_cross_configs())
        .filter(move |c| seen.insert(c.name.clone()))
}

fn find_config(name: &str) -> config::SimConfig {
    all_configs().find(|c| c.name == name).unwrap_or_else(|| {
        eprintln!("unknown configuration '{name}' (see `rcmc list`)");
        std::process::exit(1);
    })
}

fn list() {
    println!("benchmarks (12 INT + 14 FP SPEC2000 surrogates):");
    for b in suite() {
        let class = if b.is_fp() { "FP " } else { "INT" };
        println!("  {:10} {class}  {:?}", b.name, b.kernel);
    }
    println!("\nconfigurations (Table 3 + §4.6 + §4.7 + topology-ablation + steering-cross):");
    for c in all_configs() {
        println!("  {}", c.name);
    }
}

fn print_result(r: &runner::RunResult) {
    println!("  IPC                {:>8.3}", r.ipc);
    println!("  comms/instruction  {:>8.3}", r.comms_per_insn);
    println!("  hops/communication {:>8.2}", r.dist_per_comm);
    println!("  bus wait/comm      {:>8.2}", r.wait_per_comm);
    println!("  NREADY/cycle       {:>8.2}", r.nready);
    println!("  branch miss rate   {:>8.3}", r.branch_miss_rate);
    let shares: Vec<String> = r
        .dispatch_shares
        .iter()
        .map(|s| format!("{:.0}%", s * 100.0))
        .collect();
    println!("  dispatch shares    [{}]", shares.join(" "));
}

/// Progress printer for long sweeps (the shared status-line renderer).
fn progress_line(p: &SweepProgress<'_>) {
    p.eprint_status();
}

fn run(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 1, "benchmark name");
    let cfg_name = flags
        .get("config")
        .cloned()
        .unwrap_or_else(|| "Ring_8clus_1bus_2IW".to_string());
    let mut cfg = find_config(&cfg_name);
    if let Some(t) = flags.get("topology") {
        let Some(topology) = config::parse_topology(t) else {
            eprintln!("unknown topology '{t}' (ring | conv | crossbar | mesh | hier)");
            std::process::exit(2);
        };
        cfg = config::with_topology(&cfg, topology);
    }
    if let Some(s) = flags.get("steering") {
        let Some(steering) = config::parse_steering(s) else {
            eprintln!("unknown steering '{s}' (ringdep | dcount | ssa)");
            std::process::exit(2);
        };
        cfg = config::with_steering(&cfg, steering);
    }
    let budget = budget_from(flags);
    let _ = jobs_from(flags); // validated; a single run always uses one worker
    let store = ResultStore::open_default();
    let r = runner::run_pair(&cfg, &bench, &budget, &store);
    println!(
        "{bench} on {} ({} measured instructions):",
        cfg.name, r.committed
    );
    print_result(&r);
}

fn compare(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 1, "benchmark name");
    let budget = budget_from(flags);
    let jobs = jobs_from(flags);
    let store = ResultStore::open_default();
    // Both sides go through the sweep engine, so `--jobs 2` runs them
    // concurrently.
    let cfgs = [
        find_config("Ring_8clus_1bus_2IW"),
        find_config("Conv_8clus_1bus_2IW"),
    ];
    let results = runner::sweep(&cfgs, &[&bench], &budget, &store, jobs);
    let ring = &results[&(cfgs[0].name.clone(), bench.clone())];
    let conv = &results[&(cfgs[1].name.clone(), bench.clone())];
    println!("{bench}: Ring_8clus_1bus_2IW");
    print_result(ring);
    println!("{bench}: Conv_8clus_1bus_2IW");
    print_result(conv);
    println!(
        "Ring speedup over Conv: {:+.1}%",
        (ring.ipc / conv.ipc - 1.0) * 100.0
    );
}

fn disasm(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 1, "benchmark name");
    let limit: usize = num_flag(flags, "limit").unwrap_or(64);
    let Some(b) = benchmark(&bench) else {
        eprintln!("unknown benchmark '{bench}'");
        std::process::exit(1);
    };
    let program = b.build();
    println!(
        "{bench}: {} static instructions, {} bytes of data",
        program.insns.len(),
        program.data_len()
    );
    for line in program.disassemble().lines().take(limit) {
        println!("{line}");
    }
    if program.insns.len() > limit {
        println!("... ({} more; use --limit)", program.insns.len() - limit);
    }
}

fn trace_cmd(args: &[String], flags: &HashMap<String, String>) {
    let bench = positional(args, 1, "benchmark name");
    let from: u32 = num_flag(flags, "from").unwrap_or(1000);
    let len: u32 = num_flag(flags, "len").unwrap_or(24);
    let cfg_name = flags
        .get("config")
        .cloned()
        .unwrap_or_else(|| "Ring_8clus_1bus_2IW".to_string());
    let cfg = find_config(&cfg_name);
    let trace = cached_trace(&bench, (from + len) as u64 + 50_000);
    let mut core = Core::new(cfg.core.clone(), cfg.mem, cfg.pred, &trace);
    core.attach_tracer(PipeTracer::new(from, from + len));
    core.run((from + len) as u64 + 20_000);
    let tracer = core.take_tracer().unwrap();
    println!(
        "{bench} on {cfg_name}, dynamic instructions {from}..{}",
        from + len
    );
    print!("{}", tracer.render(&trace, 100));
    let (wait, lat) = tracer.latency_summary();
    println!("mean dispatch→issue wait {wait:.1} cycles; mean issue→complete {lat:.1} cycles");
}

fn figures(flags: &HashMap<String, String>) {
    let budget = Budget::default();
    let store = ResultStore::open_default();
    let opts = SweepOpts {
        jobs: jobs_from(flags),
        on_progress: Some(&progress_line),
    };
    for ex in experiments::run_all(&budget, &store, &opts) {
        println!("================================================================");
        println!("{}", ex.text);
    }
}

fn csv(flags: &HashMap<String, String>) {
    let budget = Budget::default();
    let store = ResultStore::open_default();
    let opts = SweepOpts {
        jobs: jobs_from(flags),
        on_progress: Some(&progress_line),
    };
    let results = experiments::main_sweep(&budget, &store, &opts);
    let csv = ring_clustered::sim::report::to_csv(&results);
    match flags.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &csv).expect("failed to write CSV");
            eprintln!("wrote {} rows to {path}", csv.lines().count() - 1);
        }
        _ => print!("{csv}"),
    }
}

fn layout() {
    // Reuse the layout example's content through the library API.
    let ex = experiments::table1();
    println!("{}", ex.text);
    let ex = experiments::figure4_5();
    println!("{}", ex.text);
    for n in [4usize, 8] {
        let p = ring_clustered::layout::ring_placement(n);
        let (s, c) = p.module_counts();
        println!("Figure 3: {n} clusters -> {s} straight + {c} corner modules");
    }
    // Sanity: the emulator and suite agree (cheap self-check for the CLI).
    let b = benchmark("swim").unwrap();
    let t = trace_program(&b.build(), 1000).unwrap();
    assert_eq!(t.insns.len(), 1000);
}
